"""Simulated SIMT (CUDA-class) device substrate.

The paper runs on an NVIDIA GTX 280; this environment has no GPU, so the
substrate *simulates* one: algorithms execute functionally (kernels compute
real results on device-resident arrays) while time advances on a simulated
device clock driven by the analytic cost model in :mod:`repro.perfmodel`.
Every code path of a real CUDA port is exercised — explicit allocation,
host↔device transfers, kernel launches with grid/block configuration,
per-kernel statistics, events — so the solver in :mod:`repro.core` reads
exactly like its CUDA original.

Layers
------
- :mod:`~repro.gpu.device`   — :class:`Device`: clock, allocator, statistics.
- :mod:`~repro.gpu.memory`   — :class:`DeviceArray` and transfer helpers.
- :mod:`~repro.gpu.kernel`   — launch configuration and validation.
- :mod:`~repro.gpu.event`    — CUDA-event-style timing API.
- :mod:`~repro.gpu.blas`     — device BLAS 1/2/3 (cuBLAS stand-in).
- :mod:`~repro.gpu.reduce`   — parallel reductions, argmin/argmax, scan.
- :mod:`~repro.gpu.sparse_kernels` — SpMV and gather/scatter kernels.
- :mod:`~repro.gpu.simt`     — thread-level SIMT interpreter (warps, shared
  memory, ``syncthreads``) used to validate the block-level kernels.
"""

from repro.gpu.device import Device, DeviceStats, KernelRecord
from repro.gpu.memory import DeviceArray
from repro.gpu.kernel import LaunchConfig, launch_config
from repro.gpu.event import Event, Stream
from repro.gpu.occupancy import OccupancyResult, best_block_size, occupancy
from repro.gpu.profiler import Profile, TimelineEvent, profile

__all__ = [
    "Device",
    "DeviceStats",
    "KernelRecord",
    "DeviceArray",
    "LaunchConfig",
    "launch_config",
    "Event",
    "Stream",
    "OccupancyResult",
    "occupancy",
    "best_block_size",
    "Profile",
    "TimelineEvent",
    "profile",
]

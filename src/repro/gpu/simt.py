"""Thread-level SIMT interpreter: warps, shared memory, ``__syncthreads``.

The block-level kernels in :mod:`repro.gpu.blas` and :mod:`repro.gpu.reduce`
compute their results with vectorised NumPy for speed.  This module provides
the ground truth they are validated against: a miniature SIMT machine that
executes **one Python generator per thread**, grouped into warps, with
block-shared memory and barrier synchronisation — the execution model of the
hardware the paper targets.

Kernel authoring model
----------------------
A SIMT kernel is a *generator function* taking a :class:`ThreadCtx` first::

    def vec_add(t, x, y, out):
        i = t.global_id
        if i < out.size:
            out[i] = x[i] + y[i]
        yield  # __syncthreads() — optional for independent threads

``yield`` is ``__syncthreads()``: the engine advances every live thread of a
block to its next ``yield`` before any proceeds.  A block in which some
threads exit while siblings wait at a barrier is *barrier divergence* —
undefined behaviour on hardware, a detected error here.

The engine reports run statistics (blocks, warps, barriers) so tests can
assert structural properties (e.g. a tree reduction executes the expected
number of barriers).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator

import numpy as np

from repro.errors import DeviceError, InvalidLaunchError
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS


class SimtBarrierError(DeviceError):
    """Barrier divergence: threads of one block disagree about a barrier."""


@dataclasses.dataclass
class SimtRunStats:
    """Structural statistics of one SIMT kernel run."""

    blocks: int = 0
    warps: int = 0
    threads: int = 0
    barriers: int = 0  # per-block barrier episodes, summed over blocks


class SharedMemory:
    """Block-shared scratch memory.

    ``alloc(name, shape, dtype)`` returns the same array for every thread of
    the block (first caller allocates), mirroring ``__shared__`` declarations.
    A per-block byte budget mirrors the hardware limit.
    """

    def __init__(self, limit_bytes: int):
        self.limit_bytes = limit_bytes
        self._arrays: dict[str, np.ndarray] = {}
        self._used = 0

    def alloc(self, name: str, shape, dtype=np.float32) -> np.ndarray:
        if name in self._arrays:
            return self._arrays[name]
        arr = np.zeros(shape, dtype=dtype)
        if self._used + arr.nbytes > self.limit_bytes:
            raise DeviceError(
                f"shared memory overflow: {self._used + arr.nbytes} B requested, "
                f"{self.limit_bytes} B per block available"
            )
        self._used += arr.nbytes
        self._arrays[name] = arr
        return arr


@dataclasses.dataclass
class ThreadCtx:
    """Per-thread identity, exactly the CUDA built-ins."""

    thread_idx: int  # threadIdx.x
    block_idx: int  # blockIdx.x
    block_dim: int  # blockDim.x
    grid_dim: int  # gridDim.x
    shared: SharedMemory
    warp_size: int = 32

    @property
    def global_id(self) -> int:
        """blockIdx.x * blockDim.x + threadIdx.x."""
        return self.block_idx * self.block_dim + self.thread_idx

    @property
    def lane(self) -> int:
        """Lane within the warp (threadIdx.x % warpSize)."""
        return self.thread_idx % self.warp_size

    @property
    def warp_id(self) -> int:
        """Warp index within the block (threadIdx.x // warpSize)."""
        return self.thread_idx // self.warp_size


KernelFn = Callable[..., "Generator[None, None, None] | None"]


class SimtEngine:
    """Executes SIMT kernels thread-by-thread in warp order."""

    def __init__(self, params: GpuModelParams = GTX280_PARAMS):
        self.params = params

    def run(
        self,
        kernel: KernelFn,
        grid: int,
        block: int,
        *args: Any,
    ) -> SimtRunStats:
        """Run ``kernel`` over a 1-D grid of 1-D blocks.

        Threads are created in warp order within each block; blocks run to
        completion one at a time (valid because CUDA blocks must be
        independent — inter-block communication within a launch is UB, and
        any kernel relying on it will fail visibly here).
        """
        if block < 1 or grid < 1:
            raise InvalidLaunchError("grid and block must be positive")
        if block > self.params.max_threads_per_block:
            raise InvalidLaunchError(
                f"block of {block} threads exceeds device limit "
                f"{self.params.max_threads_per_block}"
            )
        stats = SimtRunStats()
        warp = self.params.warp_size
        for bx in range(grid):
            shared = SharedMemory(self.params.shared_mem_per_block)
            generators: list[Generator[None, None, None]] = []
            for tx in range(block):
                ctx = ThreadCtx(
                    thread_idx=tx,
                    block_idx=bx,
                    block_dim=block,
                    grid_dim=grid,
                    shared=shared,
                    warp_size=warp,
                )
                result = kernel(ctx, *args)
                if result is not None:
                    generators.append(result)
            self._run_block(generators, stats)
            stats.blocks += 1
            stats.threads += block
            stats.warps += -(-block // warp)
        return stats

    @staticmethod
    def _run_block(
        generators: list["Generator[None, None, None]"], stats: SimtRunStats
    ) -> None:
        """Advance every thread of a block in lockstep barrier episodes."""
        live = generators
        while live:
            survivors: list[Generator[None, None, None]] = []
            finished = 0
            for gen in live:
                try:
                    next(gen)
                    survivors.append(gen)
                except StopIteration:
                    finished += 1
            if survivors and finished:
                raise SimtBarrierError(
                    f"barrier divergence: {finished} thread(s) exited while "
                    f"{len(survivors)} thread(s) reached __syncthreads()"
                )
            if survivors:
                stats.barriers += 1
            live = survivors


# ---------------------------------------------------------------------------
# Reference SIMT kernels (used by the validation test-suite and as worked
# examples of the authoring model).
# ---------------------------------------------------------------------------


def simt_vector_add(t: ThreadCtx, x: np.ndarray, y: np.ndarray, out: np.ndarray):
    """out := x + y, one element per thread (guard-clause pattern)."""
    i = t.global_id
    if i < out.size:
        out[i] = x[i] + y[i]
    return
    yield  # pragma: no cover - marks this as a generator function


def simt_block_sum(t: ThreadCtx, x: np.ndarray, partials: np.ndarray):
    """Classic shared-memory tree reduction: one partial sum per block.

    Mirrors the CUDA SDK ``reduce3`` kernel: strided load, then a halving
    tree with a barrier per level.
    """
    sdata = t.shared.alloc("sdata", t.block_dim, dtype=np.float64)
    i = t.global_id
    sdata[t.thread_idx] = x[i] if i < x.size else 0.0
    yield  # barrier: all loads complete

    stride = t.block_dim // 2
    while stride > 0:
        if t.thread_idx < stride:
            sdata[t.thread_idx] += sdata[t.thread_idx + stride]
        yield  # barrier per tree level
        stride //= 2

    if t.thread_idx == 0:
        partials[t.block_idx] = sdata[0]


def simt_dot_partial(
    t: ThreadCtx, x: np.ndarray, y: np.ndarray, partials: np.ndarray
):
    """Per-block partial dot product with a grid-stride load loop."""
    sdata = t.shared.alloc("sdata", t.block_dim, dtype=np.float64)
    acc = 0.0
    i = t.global_id
    stride = t.block_dim * t.grid_dim
    while i < x.size:
        acc += float(x[i]) * float(y[i])
        i += stride
    sdata[t.thread_idx] = acc
    yield

    s = t.block_dim // 2
    while s > 0:
        if t.thread_idx < s:
            sdata[t.thread_idx] += sdata[t.thread_idx + s]
        yield
        s //= 2

    if t.thread_idx == 0:
        partials[t.block_idx] = sdata[0]


def simt_gemv_warp_per_row(
    t: ThreadCtx, a: np.ndarray, x: np.ndarray, y: np.ndarray
):
    """y := A x with one warp per matrix row — the mapping the device BLAS
    charges for GEMV.  Lanes stride across the row (coalesced reads), then
    reduce within the warp via shared memory.
    """
    m, n = a.shape
    row = t.global_id // t.warp_size
    lane = t.lane
    sdata = t.shared.alloc("warp_sums", t.block_dim, dtype=np.float64)
    acc = 0.0
    if row < m:
        j = lane
        while j < n:
            acc += float(a[row, j]) * float(x[j])
            j += t.warp_size
    sdata[t.thread_idx] = acc
    yield  # barrier: all partial sums in shared memory

    # warp-local tree reduction (lockstep lanes; barrier per level keeps the
    # interpreter honest about ordering)
    offset = t.warp_size // 2
    while offset > 0:
        if lane < offset:
            sdata[t.thread_idx] += sdata[t.thread_idx + offset]
        yield
        offset //= 2
    if lane == 0 and row < m:
        y[row] = sdata[t.thread_idx]


def simt_block_argmin(
    t: ThreadCtx, x: np.ndarray, out_val: np.ndarray, out_idx: np.ndarray
):
    """Per-block arg-min with (value, index) pairs in shared memory and the
    lowest-index tie-break — the ground truth for ``reduce.argmin``."""
    vals = t.shared.alloc("vals", t.block_dim, dtype=np.float64)
    idxs = t.shared.alloc("idxs", t.block_dim, dtype=np.int64)
    i = t.global_id
    if i < x.size:
        vals[t.thread_idx] = x[i]
        idxs[t.thread_idx] = i
    else:
        vals[t.thread_idx] = np.inf
        idxs[t.thread_idx] = 2**62
    yield

    stride = t.block_dim // 2
    while stride > 0:
        if t.thread_idx < stride:
            other = t.thread_idx + stride
            better = vals[other] < vals[t.thread_idx] or (
                vals[other] == vals[t.thread_idx]
                and idxs[other] < idxs[t.thread_idx]
            )
            if better:
                vals[t.thread_idx] = vals[other]
                idxs[t.thread_idx] = idxs[other]
        yield
        stride //= 2

    if t.thread_idx == 0:
        out_val[t.block_idx] = vals[0]
        out_idx[t.block_idx] = idxs[0]


def simt_eta_update_row(
    t: ThreadCtx,
    binv: np.ndarray,
    eta_minus_ep: np.ndarray,
    row_p: np.ndarray,
):
    """One thread per B⁻¹ element: the rank-1 eta update GER, the exact
    per-thread body of the solver's basis-update kernel."""
    m = binv.shape[0]
    idx = t.global_id
    if idx < m * m:
        i, j = divmod(idx, m)
        binv[i, j] += eta_minus_ep[i] * row_p[j]
    return
    yield  # pragma: no cover - marks this as a generator function


def simt_ratio_test(
    t: ThreadCtx,
    beta: np.ndarray,
    alpha: np.ndarray,
    ratios: np.ndarray,
    tol: float,
):
    """The simplex ratio-test map kernel: ratios[i] = βᵢ/αᵢ where αᵢ > tol,
    +inf elsewhere — exactly the per-thread body of the solver's kernel."""
    i = t.global_id
    if i < ratios.size:
        a = alpha[i]
        ratios[i] = beta[i] / a if a > tol else np.inf
    return
    yield  # pragma: no cover - marks this as a generator function

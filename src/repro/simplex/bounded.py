"""Bounded-variable (upper-bounded) revised simplex.

The classical conversion turns every finite range bound ``lo <= x <= hi``
into an extra constraint row, growing the basis.  The bounded-variable
simplex instead keeps upper bounds *inside* the method: nonbasic variables
rest at either their lower bound (0) or their upper bound u, the ratio test
gains two extra cases, and a variable may simply *flip bounds* without any
basis change at all — an O(m) iteration instead of an O(m²) pivot.

Per iteration:

1. **pricing** — a nonbasic-at-lower column improves when ``d_j < -tol``;
   a nonbasic-at-upper column improves when ``d_j > +tol`` (it wants to
   *decrease*).  Both unify under the signed score ``σ_j d_j`` with
   ``σ_j = +1`` at lower, ``-1`` at upper.
2. **ratio test** (entering moves by σ·t, t >= 0; basics move by −σ·t·α):

   - a basic decreasing toward 0:          ``t <= x_i / (σ α_i)``,
   - a basic increasing toward its u:      ``t <= (u_i − x_i) / (−σ α_i)``,
   - the entering variable's own bound:    ``t <= u_q``  → **bound flip**.

3. **update** — a bound flip touches only x_B (one AXPY, no eta update);
   otherwise the usual rank-1 basis update with the leaving variable
   recorded at whichever of its bounds it hit.

This is the classic extension the thesis's future work points at
("využití slackových proměnných … efektivnější nalezení počáteční báze"),
and the A5 ablation measures what it buys over bounds-as-rows.

Runs as a :class:`~repro.engine.backend.SolverBackend` on the shared
:mod:`repro.engine` lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.engine import SolverBackend
from repro.errors import SingularBasisError, SolverError
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.basis import make_basis
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus

#: Ratio-test outcome marker for a bound flip (no basis change).
BOUND_FLIP = -2


class BoundedRevisedSimplexSolver(SolverBackend):
    """CPU revised simplex with native upper-bound handling."""

    name = "revised-bounded"

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing in ("devex", "steepest-edge"):
            raise SolverError(
                "devex/steepest-edge pricing needs the tableau solver"
            )
        if self.options.scale:
            raise SolverError(
                "the bounded solver does not combine with scaling yet; "
                "scale the data before building the problem"
            )
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        self.recorder.reset()
        opts = self.options
        self.prep = prep = prepare(problem, opts, range_bounds_as_rows=False)
        m, n = prep.m, prep.n_total
        upper = prep.std.upper_bounds()
        u_full = np.concatenate([upper, np.full(m, np.inf)])  # artificials

        basisrep = make_basis(opts.basis_update, m, self.recorder)
        basis, needs_phase1 = initial_basis(prep)
        in_basis = np.zeros(n + m, dtype=bool)
        in_basis[basis] = True
        at_upper = np.zeros(n, dtype=bool)  # all nonbasics start at lower
        x_b = prep.b.astype(np.float64).copy()
        self.stats = stats = IterationStats()
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "dtype": np.dtype(opts.dtype).name,
            },
        )

        self.st = _BoundedState(prep, basisrep, basis, in_basis, at_upper, x_b,
                                u_full, stats)
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = PHASE1_TOL
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        status, z, iters = self._run_phase(self.st, c_full, phase=phase)
        self._z = z
        return status, iters

    def phase1_objective(self) -> float:
        return self._z

    # ------------------------------------------------------------------

    def _run_phase(self, st: "_BoundedState", c_full: np.ndarray,
                   phase: int = 2):
        opts = self.options
        tr = self.hooks if self.hooks.enabled else None
        prep = st.prep
        m, n = prep.m, prep.n_total
        w = np.dtype(opts.dtype).itemsize
        cap = opts.iteration_cap(m, n)
        use_bland = opts.pricing == "bland"
        stalled = 0
        z = float(c_full[st.basis] @ st.x_b) + float(
            c_full[:n][st.at_upper] @ st.u[:n][st.at_upper]
        )
        iters = 0
        tol_rc = opts.tol_reduced_cost
        tol_piv = opts.tol_pivot

        def rule_name() -> str:
            if opts.pricing == "hybrid":
                return "hybrid:bland" if use_bland else "hybrid:dantzig"
            return opts.pricing

        while iters < cap:
            iters += 1

            # pricing
            y = st.basisrep.btran(c_full[st.basis])
            d = c_full[:n] - prep.price_all(y)
            self.recorder.charge(
                "pricing",
                OpCost(
                    flops=prep.price_flops(),
                    bytes_read=(prep.nnz if prep.is_sparse else m * n) * w + m * w,
                    bytes_written=n * w,
                ),
            )
            sigma_all = np.where(st.at_upper, -1.0, 1.0)
            signed = np.where(~st.in_basis[:n], sigma_all * d, np.inf)
            if use_bland:
                hits = np.nonzero(signed < -tol_rc)[0]
                q = int(hits[0]) if hits.size else None
            else:
                q = int(np.argmin(signed))
                if signed[q] >= -tol_rc:
                    q = None
            if q is None:
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="optimal",
                        pricing_rule=rule_name(),
                        eta_count=int(st.basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.OPTIMAL, z, iters
            sigma = float(sigma_all[q])
            d_q = float(d[q])

            # ftran
            alpha = st.basisrep.ftran(prep.column(q))

            # three-way ratio test
            delta = -sigma * alpha  # rate of change of x_B per unit t
            theta = np.inf
            p = BOUND_FLIP if np.isfinite(st.u[q]) else -1
            to_upper_leaving = False
            if np.isfinite(st.u[q]):
                theta = float(st.u[q])
            u_basis = st.u[st.basis]
            with np.errstate(divide="ignore", invalid="ignore"):
                dec = delta < -tol_piv
                t_dec = np.where(dec, st.x_b / np.maximum(-delta, 1e-300), np.inf)
                inc = (delta > tol_piv) & np.isfinite(u_basis)
                t_inc = np.where(
                    inc, (u_basis - st.x_b) / np.maximum(delta, 1e-300), np.inf
                )
            t_dec = np.where(t_dec < 0, 0.0, t_dec)
            t_inc = np.where(t_inc < 0, 0.0, t_inc)
            best_dec = float(t_dec.min()) if m else np.inf
            best_inc = float(t_inc.min()) if m else np.inf
            basic_best = min(best_dec, best_inc)
            self.recorder.charge(
                "ratio", OpCost(flops=4 * m, bytes_read=3 * m * w, bytes_written=m * w)
            )
            if basic_best < theta * (1.0 - 1e-12):
                theta = basic_best
                # tie-break among blocking rows: lowest basic-variable index
                tied = np.nonzero(
                    np.minimum(t_dec, t_inc) <= theta * (1 + 1e-12) + 1e-300
                )[0]
                p = int(tied[np.argmin(st.basis[tied])])
                to_upper_leaving = t_inc[p] <= t_dec[p]
            if not np.isfinite(theta):
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="unbounded",
                        entering=int(q), pricing_rule=rule_name(),
                        eta_count=int(st.basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.UNBOUNDED, z, iters
            degenerate = theta <= opts.tol_zero
            if degenerate:
                st.stats.degenerate_steps += 1

            # update x_B and the objective
            st.x_b += theta * delta
            np.clip(st.x_b, 0.0, None, out=st.x_b)
            z += d_q * sigma * theta
            self.recorder.charge(
                "update.beta",
                OpCost(flops=2 * m, bytes_read=2 * m * w, bytes_written=m * w),
            )

            improved = (-d_q * sigma) * theta > 1e-12 * (1.0 + abs(z))
            if p == BOUND_FLIP:
                st.at_upper[q] = ~st.at_upper[q]
                st.flips += 1
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="flip",
                        entering=int(q), theta=float(theta),
                        pricing_rule=rule_name(),
                        eta_count=int(st.basisrep.updates_since_refactor),
                        objective=float(z), degenerate=degenerate,
                    )
            else:
                leaving = int(st.basis[p])
                x_q_new = st.u[q] - theta if sigma < 0 else theta
                try:
                    st.basisrep.update(alpha, p, tol_piv)
                except SingularBasisError:
                    recovered = self._recover(st)
                    if tr is not None:
                        tr.record(
                            phase=phase, iteration=iters,
                            event="recovery" if recovered else "numerical",
                            entering=int(q), leaving_row=int(p),
                            pricing_rule=rule_name(), objective=float(z),
                        )
                    if not recovered:
                        return SolveStatus.NUMERICAL, z, iters
                    continue
                st.x_b[p] = x_q_new
                st.in_basis[leaving] = False
                st.in_basis[q] = True
                st.basis[p] = q
                if leaving < n:
                    st.at_upper[leaving] = to_upper_leaving and np.isfinite(
                        st.u[leaving]
                    )
                st.at_upper[q] = False
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="pivot",
                        entering=int(q), leaving_row=int(p), leaving_var=leaving,
                        pivot=float(alpha[p]), theta=float(theta),
                        ratio_ties=int(tied.size), pricing_rule=rule_name(),
                        eta_count=int(st.basisrep.updates_since_refactor),
                        objective=float(z), degenerate=degenerate,
                    )

            if opts.pricing == "hybrid":
                if improved:
                    stalled = 0
                    use_bland = False
                else:
                    stalled += 1
                    if stalled >= opts.stall_window and not use_bland:
                        use_bland = True
                        st.stats.bland_activations += 1
                        stalled = 0

            if (
                opts.refactor_period
                and st.basisrep.updates_since_refactor >= opts.refactor_period
            ):
                if not self._recover(st):
                    return SolveStatus.NUMERICAL, z, iters
                z = float(c_full[st.basis] @ st.x_b) + float(
                    c_full[:n][st.at_upper] @ st.u[:n][st.at_upper]
                )

        return SolveStatus.ITERATION_LIMIT, z, iters

    # ------------------------------------------------------------------

    def _recover(self, st: "_BoundedState") -> bool:
        """Refactorise and recompute x_B from scratch."""
        try:
            with self.hooks.span("engine.refactor"):
                st.basisrep.refactorize(st.prep.basis_matrix(st.basis))
        except SingularBasisError:
            return False
        st.stats.refactorizations += 1
        st.x_b[:] = st.basisrep.ftran(st.effective_b())
        np.clip(st.x_b, 0.0, None, out=st.x_b)
        return True

    def drive_out_artificials(self) -> None:
        st = self.st
        prep = st.prep
        m, n = prep.m, prep.n_total
        for p in np.nonzero(st.basis >= n)[0]:
            e_p = np.zeros(m)
            e_p[p] = 1.0
            row = prep.row_all(st.basisrep.btran(e_p))
            candidates = np.nonzero((~st.in_basis[:n]) & (np.abs(row) > 1e-7))[0]
            if candidates.size == 0:
                continue
            for j in candidates[np.argsort(-np.abs(row[candidates]))]:
                j = int(j)
                alpha = st.basisrep.ftran(prep.column(j))
                try:
                    st.basisrep.update(alpha, int(p), self.options.tol_pivot)
                except SingularBasisError:
                    continue
                # degenerate swap: values do not move
                st.x_b[p] = st.u[j] if st.at_upper[j] else 0.0
                st.in_basis[st.basis[p]] = False
                st.in_basis[j] = True
                st.basis[p] = j
                st.at_upper[j] = False
                break

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def standard_extras(self, result: SolveResult) -> None:
        result.extra["bound_flips"] = self.st.flips

    def extract(self, result: SolveResult) -> None:
        st = self.st
        prep = st.prep
        n = prep.n_total
        x_std = np.zeros(n)
        x_std[st.at_upper] = st.u[:n][st.at_upper]
        real = st.basis < n
        x_std[st.basis[real]] = st.x_b[real]
        z_std = float(prep.std.c @ x_std)
        result.objective = prep.std.original_objective(z_std)
        result.x = prep.std.recover_x(x_std)
        result.residuals = SolveResult.compute_residuals(
            prep.std.a, prep.std.b, x_std
        )
        result.extra["basis"] = st.basis.copy()
        result.extra["x_std"] = x_std
        result.extra["at_upper"] = st.at_upper.copy()
        # duals directly from the final basis
        c_full = np.concatenate([prep.c, np.zeros(prep.m)])
        try:
            y = np.linalg.solve(
                prep.basis_matrix(st.basis).T, c_full[st.basis]
            )
            result.extra["duals"] = prep.std.recover_duals(y)
        except np.linalg.LinAlgError:
            pass


class _BoundedState:
    """Mutable solver state bundled for the phase loop."""

    def __init__(self, prep: PreparedLP, basisrep, basis, in_basis, at_upper,
                 x_b, u_full, stats: IterationStats):
        self.prep = prep
        self.basisrep = basisrep
        self.basis = basis
        self.in_basis = in_basis
        self.at_upper = at_upper
        self.x_b = x_b
        self.u = u_full
        self.stats = stats
        self.flips = 0

    def effective_b(self) -> np.ndarray:
        """b − Σ_{j at upper} a_j u_j (the rhs seen by the basic variables)."""
        b = self.prep.b.astype(np.float64).copy()
        for j in np.nonzero(self.at_upper)[0]:
            b -= self.prep.column(int(j)) * self.u[j]
        return b

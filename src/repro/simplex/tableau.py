"""Dense two-phase full-tableau simplex on the CPU.

The textbook method the thesis literature ports first: the whole updated
tableau ``T = B⁻¹A`` is kept and transformed by Gauss–Jordan elimination
around each pivot — O(m·n) work per iteration regardless of sparsity, which
is exactly the inefficiency the revised method (and the paper) avoids.  It
serves as (a) an independent correctness oracle, (b) the host of the exact
steepest-edge / Devex pricing rules (they need updated columns), and (c) the
CPU side of the A3 tableau-vs-revised ablation.

Runs as a :class:`~repro.engine.backend.SolverBackend` on the shared
:mod:`repro.engine` lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.engine import SolverBackend, attach_standard_solution, rule_label
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.simplex.pricing import (
    DevexRule,
    HybridRule,
    SteepestEdgeRule,
    make_pricing_rule,
)
from repro.simplex.ratio import run_ratio_test
from repro.status import SolveStatus


class TableauSimplexSolver(SolverBackend):
    """CPU dense full-tableau simplex."""

    name = "tableau-cpu"

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
    ):
        self.options = options or SolverOptions()
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        self.recorder.reset()
        opts = self.options
        self.prep = prep = prepare(problem, opts)
        m, n = prep.m, prep.n_total

        basis, needs_phase1 = initial_basis(prep)
        # Materialise the tableau; artificial identity block only if needed.
        n_cols = n + (m if needs_phase1 else 0)
        tableau = np.zeros((m, n_cols))
        tableau[:, :n] = prep.a.to_dense() if prep.is_sparse else np.asarray(prep.a)
        if needs_phase1:
            tableau[:, n:] = np.eye(m)
        self.tableau = tableau
        self.n_cols = n_cols
        self.basis = basis
        self.beta = prep.b.astype(np.float64).copy()
        self.in_basis = np.zeros(n_cols, dtype=bool)
        self.in_basis[basis] = True
        self.stats = IterationStats()
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "ratio_test": opts.ratio_test,
                "dtype": np.dtype(opts.dtype).name,
            },
        )
        artificial = np.zeros(n_cols, dtype=bool)
        artificial[n:] = True
        self.enterable = ~artificial
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = PHASE1_TOL
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        n = self.prep.n_total
        c_full = np.zeros(self.n_cols)
        if phase == 1:
            c_full[n:] = 1.0
        else:
            c_full[:n] = self.prep.c
        status, z, iters = self._run_phase(
            self.prep, self.tableau, self.beta, self.basis, self.in_basis,
            c_full, self.enterable, self.stats, phase=phase,
        )
        self._z = z
        return status, iters

    def phase1_objective(self) -> float:
        return self._z

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        prep: PreparedLP,
        tableau: np.ndarray,
        beta: np.ndarray,
        basis: np.ndarray,
        in_basis: np.ndarray,
        c_full: np.ndarray,
        enterable: np.ndarray,
        stats: IterationStats,
        phase: int = 2,
    ) -> tuple[SolveStatus, float, int]:
        opts = self.options
        tr = self.hooks if self.hooks.enabled else None
        m, n_cols = tableau.shape
        w = np.dtype(opts.dtype).itemsize
        rule = make_pricing_rule(opts.pricing, opts.stall_window)
        rule.reset(n_cols)
        cap = opts.iteration_cap(m, n_cols)

        def finish_phase(status: SolveStatus, z: float, iters: int):
            # Flush the per-phase Dantzig→Bland switch count on every exit
            # path; the rule is per-phase, so each phase contributes exactly
            # once (activations used to be dropped unless the iteration cap
            # was hit).
            if isinstance(rule, HybridRule):
                stats.bland_activations += rule.activations
            return status, z, iters

        # reduced costs of the *current* tableau (basis may be non-trivial
        # when entering phase 2)
        d = c_full - c_full[basis] @ tableau
        z = float(c_full[basis] @ beta)
        self.recorder.charge(
            "pricing.recompute",
            OpCost(flops=2 * m * n_cols, bytes_read=m * n_cols * w,
                   bytes_written=n_cols * w),
        )
        iters = 0
        while iters < cap:
            iters += 1
            if isinstance(rule, SteepestEdgeRule):
                rule.set_tableau(tableau)
                self.recorder.charge(
                    "pricing.edge_norms",
                    OpCost(flops=2 * m * n_cols, bytes_read=m * n_cols * w,
                           bytes_written=n_cols * w),
                )
            eligible = enterable & ~in_basis
            q = rule.select(d, eligible, opts.tol_reduced_cost)
            self.recorder.charge(
                "pricing.select",
                OpCost(flops=n_cols, bytes_read=n_cols * w, bytes_written=w),
            )
            if q is None:
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="optimal",
                        pricing_rule=rule_label(rule), objective=float(z),
                    )
                return finish_phase(SolveStatus.OPTIMAL, z, iters)

            alpha = tableau[:, q]
            rr = run_ratio_test(opts.ratio_test, beta, alpha, basis, opts.tol_pivot)
            self.recorder.charge(
                "ratio", OpCost(flops=m, bytes_read=2 * m * w, bytes_written=m * w)
            )
            if rr.unbounded:
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="unbounded",
                        entering=int(q), pricing_rule=rule_label(rule),
                        objective=float(z),
                    )
                return finish_phase(SolveStatus.UNBOUNDED, z, iters)
            if rr.ties > 1:
                stats.degenerate_steps += 1

            p, theta = rr.row, rr.theta
            if isinstance(rule, DevexRule):
                rule.set_pivot_row(tableau[p, :].copy())

            # Gauss–Jordan elimination around (p, q)
            piv = tableau[p, q]
            row_p = tableau[p, :] / piv
            beta_p = beta[p] / piv
            col = tableau[:, q].copy()
            tableau -= np.outer(col, row_p)
            tableau[p, :] = row_p
            beta -= col * beta_p
            beta[p] = beta_p
            np.clip(beta, 0.0, None, out=beta)
            dq = d[q]
            d -= dq * row_p
            d[q] = 0.0
            z += theta * dq
            self.recorder.charge(
                "pivot.eliminate",
                OpCost(
                    flops=2 * m * n_cols + 4 * n_cols + 4 * m,
                    bytes_read=(m * n_cols + 2 * n_cols + 2 * m) * w,
                    bytes_written=(m * n_cols + n_cols + m) * w,
                ),
            )

            improvement = theta * float(-dq)
            if tr is not None:
                tr.record(
                    phase=phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(p),
                    leaving_var=int(basis[p]),
                    pivot=float(rr.pivot), theta=float(theta),
                    ratio_ties=int(rr.ties), pricing_rule=rule_label(rule),
                    objective=float(z), degenerate=rr.ties > 1,
                )
            in_basis[basis[p]] = False
            in_basis[q] = True
            basis[p] = q
            rule.notify_pivot(q, p, None, improvement > 1e-12 * (1.0 + abs(z)))

        return finish_phase(SolveStatus.ITERATION_LIMIT, z, iters)

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued artificial basics onto real columns in place."""
        tableau, beta = self.tableau, self.beta
        basis, in_basis = self.basis, self.in_basis
        n = self.prep.n_total
        for p in np.nonzero(basis >= n)[0]:
            row = tableau[p, :n]
            candidates = np.nonzero((~in_basis[:n]) & (np.abs(row) > 1e-7))[0]
            if candidates.size == 0:
                continue  # redundant row
            q = int(candidates[np.argmax(np.abs(row[candidates]))])
            piv = tableau[p, q]
            row_p = tableau[p, :] / piv
            beta_p = beta[p] / piv
            col = tableau[:, q].copy()
            tableau -= np.outer(col, row_p)
            tableau[p, :] = row_p
            beta -= col * beta_p
            beta[p] = beta_p
            np.clip(beta, 0.0, None, out=beta)
            in_basis[basis[p]] = False
            in_basis[q] = True
            basis[p] = q

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def extract(self, result: SolveResult) -> None:
        # Artificial basics (redundant rows) sit at zero; they are
        # filtered by extract_solution's `basis < n_total` mask.
        attach_standard_solution(result, self.prep, self.basis, self.beta)

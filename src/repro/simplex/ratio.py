"""Leaving-variable ratio tests.

Given the current basic solution β and the updated entering column α, the
ratio test finds the blocking row: the basic variable that first hits zero
as the entering variable increases.

- **standard**: ``p = argmin { β_i / α_i : α_i > tol }``, ties broken to the
  lowest *basic-variable index* (the Bland-compatible tie-break that makes
  the whole method anti-cycling when paired with Bland pricing).
- **harris** (two-pass): pass 1 computes the loosest step ``θ_max`` allowed
  when every basic variable may go slightly infeasible (by ``feas_tol``);
  pass 2 picks, among rows whose ratio is within θ_max, the one with the
  largest |pivot| — trading a bounded infeasibility for numerical stability.

Both return :class:`RatioResult`; ``row < 0`` signals an unbounded
direction.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class RatioResult:
    """Outcome of a ratio test."""

    #: Pivot row index, or -1 when no row blocks (unbounded).
    row: int
    #: Step length θ (∞ when unbounded).
    theta: float
    #: Pivot magnitude α_p (0 when unbounded).
    pivot: float
    #: Number of rows tied at the minimum ratio (degeneracy signal).
    ties: int = 1

    @property
    def unbounded(self) -> bool:
        return self.row < 0


UNBOUNDED = RatioResult(row=-1, theta=float("inf"), pivot=0.0, ties=0)


def standard_ratio_test(
    beta: np.ndarray,
    alpha: np.ndarray,
    basis: np.ndarray,
    tol_pivot: float,
) -> RatioResult:
    """Minimum-ratio test with lowest-basic-variable-index tie-breaking."""
    positive = alpha > tol_pivot
    if not positive.any():
        return UNBOUNDED
    ratios = np.full(alpha.size, np.inf)
    ratios[positive] = beta[positive] / alpha[positive]
    # Clamp tiny negative ratios from round-off: β is feasible by invariant.
    ratios[positive & (ratios < 0.0)] = 0.0
    theta = float(ratios.min())
    tied = np.nonzero(ratios <= theta * (1.0 + 1e-12) + 1e-300)[0]
    # Bland-compatible tie-break: lowest basic-variable index among the tied.
    p = int(tied[np.argmin(basis[tied])])
    return RatioResult(row=p, theta=theta, pivot=float(alpha[p]), ties=int(tied.size))


def harris_ratio_test(
    beta: np.ndarray,
    alpha: np.ndarray,
    basis: np.ndarray,
    tol_pivot: float,
    feas_tol: float = 1e-7,
) -> RatioResult:
    """Harris two-pass ratio test.

    Pass 1: θ_max = min (β_i + feas_tol) / α_i over admissible rows.
    Pass 2: among rows with β_i / α_i <= θ_max choose the largest |α_i|.
    The step is then re-tightened to that row's true ratio (never negative).
    """
    positive = alpha > tol_pivot
    if not positive.any():
        return UNBOUNDED
    idx = np.nonzero(positive)[0]
    relaxed = (beta[idx] + feas_tol) / alpha[idx]
    theta_max = float(relaxed.min())
    true_ratio = np.maximum(beta[idx] / alpha[idx], 0.0)
    within = idx[true_ratio <= theta_max]
    if within.size == 0:  # numerical corner: fall back to the strict test
        return standard_ratio_test(beta, alpha, basis, tol_pivot)
    p = int(within[np.argmax(np.abs(alpha[within]))])
    theta = float(max(beta[p] / alpha[p], 0.0))
    ties = int(np.count_nonzero(true_ratio <= theta * (1.0 + 1e-12) + 1e-300))
    return RatioResult(row=p, theta=theta, pivot=float(alpha[p]), ties=ties)


def run_ratio_test(
    kind: str,
    beta: np.ndarray,
    alpha: np.ndarray,
    basis: np.ndarray,
    tol_pivot: float,
) -> RatioResult:
    """Dispatch by option name ('standard' | 'harris')."""
    if kind == "harris":
        return harris_ratio_test(beta, alpha, basis, tol_pivot)
    return standard_ratio_test(beta, alpha, basis, tol_pivot)

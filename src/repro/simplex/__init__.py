"""CPU simplex baselines and the shared algorithmic toolbox.

- :mod:`~repro.simplex.options`     — :class:`SolverOptions` for every solver.
- :mod:`~repro.simplex.pricing`     — entering-variable rules (Dantzig,
  Bland, hybrid stall-escape, Devex, exact steepest edge).
- :mod:`~repro.simplex.ratio`       — leaving-variable ratio tests
  (standard lowest-index, Harris two-pass).
- :mod:`~repro.simplex.basis`       — basis-inverse representations
  (explicit B⁻¹ with eta updates, product-form-of-inverse eta file).
- :mod:`~repro.simplex.tableau`     — dense two-phase tableau simplex.
- :mod:`~repro.simplex.revised_cpu` — dense two-phase revised simplex, the
  paper's sequential comparator.
"""

from repro.simplex.options import SolverOptions
from repro.simplex.tableau import TableauSimplexSolver
from repro.simplex.revised_cpu import RevisedSimplexSolver

__all__ = ["SolverOptions", "TableauSimplexSolver", "RevisedSimplexSolver"]

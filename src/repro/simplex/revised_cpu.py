"""Dense two-phase revised simplex on the CPU.

This is the paper's sequential comparator: the same algorithm the GPU solver
parallelises, running against NumPy (standing in for an optimized CPU BLAS)
with modeled 2009-era CPU time recorded per operation.

Algorithm (per iteration):

1. **BTRAN**    π = c_Bᵀ B⁻¹                     (basis representation)
2. **pricing**  d = c − πᵀA; entering column q   (pricing rule)
3. **FTRAN**    α = B⁻¹ a_q
4. **ratio**    leaving row p, step θ            (ratio test)
5. **update**   β, z, B⁻¹, basis index sets

Phase 1 minimises the sum of implicit artificial variables; artificials are
driven out of the basis before phase 2 (rows that cannot be driven out are
redundant and keep their artificial pinned at zero).

The two-phase driving, status handling and result assembly live in
:mod:`repro.engine`; this module implements only the method itself behind
the :class:`~repro.engine.backend.SolverBackend` interface.
"""

from __future__ import annotations

import numpy as np

from repro.engine import SolverBackend, attach_standard_solution, rule_label
from repro.errors import SingularBasisError, SolverError
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.basis import make_basis
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.simplex.pricing import HybridRule, make_pricing_rule
from repro.simplex.ratio import run_ratio_test
from repro.status import SolveStatus


class RevisedSimplexSolver(SolverBackend):
    """CPU revised simplex (dense or sparse standard-form data).

    ``solve(problem, initial_basis_hint=...)`` warm-starts from a previous
    basis (e.g. ``previous_result.extra["basis"]``).  A hint that is
    singular or infeasible silently falls back to the cold crash basis.
    """

    name = "revised-cpu"
    accepts_warm_start = True

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing in ("devex", "steepest-edge"):
            raise SolverError(
                f"pricing {self.options.pricing!r} needs the updated tableau; "
                "use the tableau solver"
            )
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        self.recorder.reset()
        opts = self.options
        self.prep = prep = prepare(problem, opts)
        m, n = prep.m, prep.n_total

        self.basisrep = make_basis(opts.basis_update, m, self.recorder)
        basis, needs_phase1 = initial_basis(prep)
        self.beta = prep.b.astype(np.float64).copy()
        self.stats = stats = IterationStats()
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "ratio_test": opts.ratio_test,
                "dtype": np.dtype(opts.dtype).name,
            },
        )
        self._phase = 1

        if warm_hint is not None:
            from repro.simplex.common import validate_warm_basis

            warm = validate_warm_basis(prep, warm_hint)
            try:
                self.basisrep.refactorize(prep.basis_matrix(warm))
                warm_beta = self.basisrep.ftran(prep.b)
                if warm_beta.min() >= -1e-7:
                    basis = warm
                    self.beta = np.clip(warm_beta, 0.0, None)
                    needs_phase1 = bool(np.any(warm >= n))
                    stats.refactorizations += 1
                else:
                    self.basisrep.reset_identity()  # infeasible hint: cold start
            except SingularBasisError:
                self.basisrep.reset_identity()

        self.basis = basis
        self.in_basis = np.zeros(n + m, dtype=bool)
        self.in_basis[basis] = True
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = PHASE1_TOL
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        self._phase = phase
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        status, z, iters = self._run_phase(
            self.prep, self.basisrep, self.basis, self.in_basis, self.beta,
            c_full, self.stats,
        )
        self._z = z
        return status, iters

    def phase1_objective(self) -> float:
        return self._z

    # ------------------------------------------------------------------

    def _pricing_cost(self, prep: PreparedLP) -> OpCost:
        w = np.dtype(self.options.dtype).itemsize
        if prep.is_sparse:
            nnz = prep.nnz
            return OpCost(
                flops=2 * nnz,
                bytes_read=nnz * (w + 4) + prep.m * w,
                bytes_written=prep.n_total * w,
            )
        return OpCost(
            flops=2 * prep.m * prep.n_total,
            bytes_read=(prep.m * prep.n_total + prep.m) * w,
            bytes_written=prep.n_total * w,
        )

    def _run_phase(
        self,
        prep: PreparedLP,
        basisrep,
        basis: np.ndarray,
        in_basis: np.ndarray,
        beta: np.ndarray,
        c_full: np.ndarray,
        stats: IterationStats,
    ) -> tuple[SolveStatus, float, int]:
        opts = self.options
        m, n = prep.m, prep.n_total
        rule = make_pricing_rule(opts.pricing, opts.stall_window)
        rule.reset(n)
        cap = opts.iteration_cap(m, n)
        z = float(c_full[basis] @ beta)
        pricing_cost = self._pricing_cost(prep)

        try:
            return self._iterate(
                prep, basisrep, basis, in_basis, beta, c_full, stats,
                rule, cap, z, pricing_cost,
            )
        finally:
            # Flush the per-phase Dantzig→Bland switch count on *every* exit
            # path (optimal, unbounded, numerical, iteration limit); the rule
            # is per-phase, so this adds each phase's activations exactly once.
            if isinstance(rule, HybridRule):
                stats.bland_activations += rule.activations

    def _iterate(
        self,
        prep: PreparedLP,
        basisrep,
        basis: np.ndarray,
        in_basis: np.ndarray,
        beta: np.ndarray,
        c_full: np.ndarray,
        stats: IterationStats,
        rule,
        cap: int,
        z: float,
        pricing_cost: OpCost,
    ) -> tuple[SolveStatus, float, int]:
        opts = self.options
        m, n = prep.m, prep.n_total
        w = np.dtype(opts.dtype).itemsize
        iters = 0
        tr = self.hooks if self.hooks.enabled else None

        while iters < cap:
            iters += 1

            # 1-2: BTRAN + pricing
            pi = basisrep.btran(c_full[basis])
            d = c_full[:n] - prep.price_all(pi)
            self.recorder.charge("pricing", pricing_cost)
            eligible = ~in_basis[:n]
            q = rule.select(d, eligible, opts.tol_reduced_cost)
            if q is None:
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters, event="optimal",
                        pricing_rule=rule_label(rule),
                        eta_count=int(basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.OPTIMAL, z, iters

            # 3: FTRAN
            a_q = prep.column(q)
            alpha = basisrep.ftran(a_q)

            # 4: ratio test
            rr = run_ratio_test(opts.ratio_test, beta, alpha, basis, opts.tol_pivot)
            self.recorder.charge(
                "ratio", OpCost(flops=m, bytes_read=2 * m * w, bytes_written=m * w)
            )
            if rr.unbounded:
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters, event="unbounded",
                        entering=int(q), pricing_rule=rule_label(rule),
                        eta_count=int(basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.UNBOUNDED, z, iters
            if rr.ties > 1:
                stats.degenerate_steps += 1

            # 5: update
            theta = rr.theta
            try:
                basisrep.update(alpha, rr.row, opts.tol_pivot)
            except SingularBasisError:
                recovered = self._recover(prep, basisrep, basis, beta, stats)
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters,
                        event="recovery" if recovered else "numerical",
                        entering=int(q), leaving_row=int(rr.row),
                        pricing_rule=rule_label(rule), objective=float(z),
                    )
                if not recovered:
                    return SolveStatus.NUMERICAL, z, iters
                continue
            beta -= theta * alpha
            beta[rr.row] = theta
            np.clip(beta, 0.0, None, out=beta)  # round-off guard; β >= 0 invariant
            self.recorder.charge(
                "update.beta",
                OpCost(flops=2 * m, bytes_read=2 * m * w, bytes_written=m * w),
            )
            improvement = theta * float(-d[q])
            z += theta * float(d[q])
            if tr is not None:
                tr.record(
                    phase=self._phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(rr.row),
                    leaving_var=int(basis[rr.row]),
                    pivot=float(rr.pivot), theta=float(theta),
                    ratio_ties=int(rr.ties), pricing_rule=rule_label(rule),
                    eta_count=int(basisrep.updates_since_refactor),
                    objective=float(z), degenerate=rr.ties > 1,
                )
            in_basis[basis[rr.row]] = False
            in_basis[q] = True
            basis[rr.row] = q
            rule.notify_pivot(q, rr.row, None, improvement > 1e-12 * (1.0 + abs(z)))

            if (
                opts.refactor_period
                and basisrep.updates_since_refactor >= opts.refactor_period
            ):
                if not self._recover(prep, basisrep, basis, beta, stats):
                    return SolveStatus.NUMERICAL, z, iters
                z = float(c_full[basis] @ beta)

        return SolveStatus.ITERATION_LIMIT, z, iters

    def _recover(self, prep, basisrep, basis, beta, stats) -> bool:
        """Refactorise from the basis columns and recompute β; False when the
        basis is genuinely singular (unrecoverable)."""
        try:
            with self.hooks.span("engine.refactor"):
                basisrep.refactorize(prep.basis_matrix(basis))
        except SingularBasisError:
            return False
        stats.refactorizations += 1
        beta[:] = basisrep.ftran(prep.b)
        np.clip(beta, 0.0, None, out=beta)
        return True

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued basic artificials out in favour of real columns.

        Rows where no real nonbasic column has a nonzero entry in the
        transformed row are redundant: their artificial stays basic at zero
        (it can never grow — phase 2 keeps its cost at 0 and β_p = 0).
        """
        prep, basisrep = self.prep, self.basisrep
        basis, in_basis, beta = self.basis, self.in_basis, self.beta
        m, n = prep.m, prep.n_total
        for p in np.nonzero(basis >= n)[0]:
            e_p = np.zeros(m)
            e_p[p] = 1.0
            row_binv = basisrep.btran(e_p)
            alpha_row = prep.row_all(row_binv)
            self.recorder.charge("driveout", self._pricing_cost(prep))
            candidates = np.nonzero(
                (~in_basis[:n]) & (np.abs(alpha_row) > 1e-7)
            )[0]
            if candidates.size == 0:
                continue  # redundant row
            # best pivot magnitude first for stability
            for j in candidates[np.argsort(-np.abs(alpha_row[candidates]))]:
                alpha = basisrep.ftran(prep.column(int(j)))
                try:
                    basisrep.update(alpha, int(p), self.options.tol_pivot)
                except SingularBasisError:
                    continue
                theta = beta[p] / alpha[p] if alpha[p] != 0 else 0.0
                beta -= theta * alpha
                beta[p] = theta
                np.clip(beta, 0.0, None, out=beta)
                in_basis[basis[p]] = False
                in_basis[int(j)] = True
                basis[p] = int(j)
                break

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def extract(self, result: SolveResult) -> None:
        attach_standard_solution(result, self.prep, self.basis, self.beta)

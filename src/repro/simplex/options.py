"""Solver options shared by every simplex implementation in the library."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import SolverError

#: Pricing rules accepted by ``SolverOptions.pricing``.
PRICING_RULES = ("dantzig", "bland", "hybrid", "devex", "steepest-edge")

#: Ratio tests accepted by ``SolverOptions.ratio_test``.
RATIO_TESTS = ("standard", "harris")

#: Basis-update strategies of the revised solvers.
BASIS_UPDATES = ("explicit", "pfi", "lu", "sparse-lu")

#: Precision policies accepted by ``SolverOptions.precision``.
PRECISION_MODES = ("fp32", "fp64", "mixed")


@dataclasses.dataclass(frozen=True)
class SolverOptions:
    """Configuration knobs common to all solvers.

    Attributes
    ----------
    pricing:
        Entering-variable rule.  ``dantzig`` (most negative reduced cost),
        ``bland`` (lowest index, anti-cycling), ``hybrid`` (Dantzig with an
        automatic Bland fallback on objective stalls), ``devex`` and
        ``steepest-edge`` (tableau solvers only — they need the updated
        column norms the tableau carries).
    ratio_test:
        ``standard`` (min ratio, lowest-index tie-break) or ``harris``
        (two-pass with feasibility tolerance; picks the largest pivot among
        near-minimal ratios for stability).
    basis_update:
        Revised solvers only: ``explicit`` keeps B⁻¹ explicitly and applies
        rank-1 eta updates (the paper's scheme); ``pfi`` keeps a product-form
        eta file over a refactorised base; ``lu`` refactorises into dense LU
        triangular factors; ``sparse-lu`` factorises the basis sparsely from
        its CSC columns with sparse eta updates (the default of the
        ``revised-sparse`` methods, which additionally refactorise early
        when fill-in grows).
    max_iterations:
        Per-phase iteration cap; 0 means the dimension-derived default
        ``50 * (m + n)``.
    tol_reduced_cost / tol_pivot / tol_zero:
        Optimality, pivot-admissibility and round-to-zero tolerances.
    tol_kkt:
        First-order (``pdlp`` / ``gpu-pdlp``) termination tolerance: the
        solve stops when the relative primal residual, relative dual
        residual and relative duality gap all fall below it.  Simplex
        methods ignore it.  Floored by the arithmetic precision (a float32
        run cannot certify 1e-9 residuals).
    stall_window:
        Iterations without objective improvement before ``hybrid`` pricing
        switches to Bland (and after escaping the stall, back).
    refactor_period:
        Revised solvers: rebuild B⁻¹ (or the PFI base) from the basis
        columns every this many pivots; 0 disables.
    scale:
        Apply geometric-mean scaling to the standard-form data.
    dtype:
        Arithmetic precision: float64 (CPU default) or float32 (the GPU's
        fast path; the F4 experiment flips this).
    fusion:
        GPU methods only: lower each iteration's device work through the
        :mod:`repro.gpu.plan` launch planner, fusing adjacent map/reduction
        kernels into single launches.  Modeled time drops (fewer launch
        overheads, shared operands fetched once); results are bit-identical
        to the unfused execution because the fused launch runs the same
        kernel bodies in the same order.
    precision:
        GPU precision policy overriding ``dtype``: ``"fp32"``/``"fp64"``
        force the device dtype, ``"mixed"`` runs the device compute in fp32
        and recovers fp64-grade solutions with iterative-refinement residual
        correction at extraction (supported by the dense GPU revised and
        tableau methods).  ``None`` (default) keeps ``dtype`` as-is.
    """

    pricing: str = "dantzig"
    ratio_test: str = "standard"
    basis_update: str = "explicit"
    max_iterations: int = 0
    tol_reduced_cost: float = 1e-9
    tol_pivot: float = 1e-9
    tol_zero: float = 1e-11
    tol_kkt: float = 1e-9
    stall_window: int = 40
    refactor_period: int = 100
    scale: bool = False
    dtype: type = np.float64
    fusion: bool = False
    precision: "str | None" = None
    #: Record a full per-iteration :class:`~repro.trace.SolveTrace` into
    #: ``result.trace`` (entering/leaving indices, pivot magnitude, step
    #: length, ratio-test ties, pricing rule, eta count, objective and
    #: per-section modeled seconds); the legacy per-pivot tuple list stays
    #: available as ``result.extra["trace"]``.  Off by default — traces are
    #: O(iterations) host memory — and tracing never perturbs results: with
    #: it on, statuses, objectives and modeled times are bit-identical.
    trace: bool = False

    def __post_init__(self) -> None:
        if self.pricing not in PRICING_RULES:
            raise SolverError(
                f"unknown pricing rule {self.pricing!r}; choose from {PRICING_RULES}"
            )
        if self.ratio_test not in RATIO_TESTS:
            raise SolverError(
                f"unknown ratio test {self.ratio_test!r}; choose from {RATIO_TESTS}"
            )
        if self.basis_update not in BASIS_UPDATES:
            raise SolverError(
                f"unknown basis update {self.basis_update!r}; choose from {BASIS_UPDATES}"
            )
        if self.max_iterations < 0:
            raise SolverError("max_iterations must be >= 0")
        for name in ("tol_reduced_cost", "tol_pivot", "tol_zero", "tol_kkt"):
            if getattr(self, name) < 0:
                raise SolverError(f"{name} must be non-negative")
        if np.dtype(self.dtype) not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise SolverError("dtype must be float32 or float64")
        if self.precision is not None and self.precision not in PRECISION_MODES:
            raise SolverError(
                f"unknown precision {self.precision!r}; choose from "
                f"{PRECISION_MODES} (or None to keep dtype)"
            )

    def replace(self, **overrides) -> "SolverOptions":
        """A copy with the given fields replaced (validates again)."""
        return dataclasses.replace(self, **overrides)

    def iteration_cap(self, m: int, n: int) -> int:
        """The effective per-phase iteration limit for an m×n problem."""
        if self.max_iterations > 0:
            return self.max_iterations
        return 50 * (m + n)

"""Sparse two-phase revised simplex on the CPU.

The sparse sibling of :mod:`repro.simplex.revised_cpu`: the constraint
matrix is held in CSC (dense inputs are converted on entry), the basis is
factorised by :class:`~repro.simplex.sparse_basis.SparseLUBasis` — sparse
LU from the basis' CSC columns plus a sparse product-form eta file — and
pricing is *partial*: reduced costs are computed section by section from
the CSC slices (:class:`~repro.simplex.sparse_pricing.SparsePartialPricing`),
so an iteration that finds an attractive column in the first section
touches a fraction of the matrix.

Refactorisation is periodic (``refactor_period``) **and** fill-triggered:
when the eta file grows the FTRAN/BTRAN working set past the basis'
``fill_limit`` times the fresh factors, the factors are rebuilt early —
the policy that keeps solve cost proportional to useful structure instead
of accumulated fill.

Every modeled cost scales with nonzeros (pricing 2·nnz(section), solves
2·(nnz(LU)+nnz(etas)), updates 2·nnz(α)), which is the entire point: at
1–5% density the dense comparator pays m·n where this backend pays nnz.

Runs behind the :class:`~repro.engine.backend.SolverBackend` interface on
the shared :mod:`repro.engine` lifecycle; all instrumentation flows
through the engine observer hooks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.engine import SolverBackend, attach_standard_solution, rule_label
from repro.errors import SingularBasisError, SolverError
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.simplex.ratio import run_ratio_test
from repro.simplex.sparse_basis import SparseLUBasis, basis_columns_csc
from repro.simplex.sparse_pricing import SparsePartialPricing
from repro.sparse.csc import CscMatrix
from repro.status import SolveStatus


def _as_sparse_prep(prep: PreparedLP) -> PreparedLP:
    """Ensure the prepared data holds a CSC matrix (convert dense inputs)."""
    if prep.is_sparse:
        if isinstance(prep.a, CscMatrix):
            return prep
        return dataclasses.replace(prep, a=prep.a.tocsc())
    return dataclasses.replace(
        prep, a=CscMatrix.from_dense(np.asarray(prep.a, dtype=np.float64))
    )


class SparseRevisedSimplexSolver(SolverBackend):
    """CPU sparse revised simplex (CSC data, sparse LU basis, partial pricing).

    ``solve(problem, initial_basis_hint=...)`` warm-starts from a previous
    basis; a singular or infeasible hint falls back to the cold crash basis,
    exactly like the dense revised solver.
    """

    name = "revised-sparse-cpu"
    accepts_warm_start = True

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing in ("devex", "steepest-edge"):
            raise SolverError(
                f"pricing {self.options.pricing!r} needs the updated tableau; "
                "use the tableau solver"
            )
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        self.recorder.reset()
        opts = self.options
        self.prep = prep = _as_sparse_prep(prepare(problem, opts))
        m, n = prep.m, prep.n_total

        # this method *is* the sparse-LU scheme; other basis_update values
        # describe dense representations and are not meaningful here
        self.basisrep = SparseLUBasis(m, self.recorder)
        basis, needs_phase1 = initial_basis(prep)
        self.beta = prep.b.astype(np.float64).copy()
        self.stats = stats = IterationStats()
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "ratio_test": opts.ratio_test,
                "dtype": np.dtype(opts.dtype).name,
                "nnz": prep.nnz,
            },
        )
        self._phase = 1

        if warm_hint is not None:
            from repro.simplex.common import validate_warm_basis

            warm = validate_warm_basis(prep, warm_hint)
            try:
                self.basisrep.refactorize(basis_columns_csc(prep, warm))
                warm_beta = self.basisrep.ftran(prep.b)
                if warm_beta.min() >= -1e-7:
                    basis = warm
                    self.beta = np.clip(warm_beta, 0.0, None)
                    needs_phase1 = bool(np.any(warm >= n))
                    stats.refactorizations += 1
                else:
                    self.basisrep.reset_identity()  # infeasible hint: cold start
            except SingularBasisError:
                self.basisrep.reset_identity()

        self.basis = basis
        self.in_basis = np.zeros(n + m, dtype=bool)
        self.in_basis[basis] = True
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = PHASE1_TOL
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        self._phase = phase
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        status, z, iters = self._run_phase(c_full)
        self._z = z
        return status, iters

    def phase1_objective(self) -> float:
        return self._z

    # ------------------------------------------------------------------

    def _run_phase(self, c_full: np.ndarray) -> tuple[SolveStatus, float, int]:
        opts = self.options
        prep = self.prep
        m, n = prep.m, prep.n_total
        rule = SparsePartialPricing(
            prep.a, opts.pricing, opts.stall_window, self.recorder, opts.dtype
        )
        rule.reset(n)
        cap = opts.iteration_cap(m, n)
        z = float(c_full[self.basis] @ self.beta)
        try:
            return self._iterate(c_full, rule, cap, z)
        finally:
            self.stats.bland_activations += rule.activations

    def _iterate(
        self,
        c_full: np.ndarray,
        rule: SparsePartialPricing,
        cap: int,
        z: float,
    ) -> tuple[SolveStatus, float, int]:
        opts = self.options
        prep, basisrep = self.prep, self.basisrep
        basis, in_basis, beta = self.basis, self.in_basis, self.beta
        stats = self.stats
        m, n = prep.m, prep.n_total
        w = np.dtype(opts.dtype).itemsize
        iters = 0
        tr = self.hooks if self.hooks.enabled else None

        while iters < cap:
            iters += 1

            # 1-2: BTRAN + partial pricing (section scan charges itself)
            pi = basisrep.btran(c_full[basis])
            choice = rule.select(pi, c_full, in_basis, opts.tol_reduced_cost)
            if choice is None:
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters, event="optimal",
                        pricing_rule=rule_label(rule),
                        eta_count=int(basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.OPTIMAL, z, iters
            q, d_q = choice

            # 3: FTRAN
            a_q = prep.column(q)
            alpha = basisrep.ftran(a_q)

            # 4: ratio test
            rr = run_ratio_test(opts.ratio_test, beta, alpha, basis, opts.tol_pivot)
            self.recorder.charge(
                "ratio", OpCost(flops=m, bytes_read=2 * m * w, bytes_written=m * w)
            )
            if rr.unbounded:
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters, event="unbounded",
                        entering=int(q), pricing_rule=rule_label(rule),
                        eta_count=int(basisrep.updates_since_refactor),
                        objective=float(z),
                    )
                return SolveStatus.UNBOUNDED, z, iters
            if rr.ties > 1:
                stats.degenerate_steps += 1

            # 5: update
            theta = rr.theta
            try:
                basisrep.update(alpha, rr.row, opts.tol_pivot)
            except SingularBasisError:
                recovered = self._recover()
                if tr is not None:
                    tr.record(
                        phase=self._phase, iteration=iters,
                        event="recovery" if recovered else "numerical",
                        entering=int(q), leaving_row=int(rr.row),
                        pricing_rule=rule_label(rule), objective=float(z),
                    )
                if not recovered:
                    return SolveStatus.NUMERICAL, z, iters
                continue
            beta -= theta * alpha
            beta[rr.row] = theta
            np.clip(beta, 0.0, None, out=beta)  # round-off guard; β >= 0 invariant
            self.recorder.charge(
                "update.beta",
                OpCost(flops=2 * m, bytes_read=2 * m * w, bytes_written=m * w),
            )
            improvement = theta * float(-d_q)
            z += theta * float(d_q)
            if tr is not None:
                tr.record(
                    phase=self._phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(rr.row),
                    leaving_var=int(basis[rr.row]),
                    pivot=float(rr.pivot), theta=float(theta),
                    ratio_ties=int(rr.ties), pricing_rule=rule_label(rule),
                    eta_count=int(basisrep.updates_since_refactor),
                    objective=float(z), degenerate=rr.ties > 1,
                )
            in_basis[basis[rr.row]] = False
            in_basis[q] = True
            basis[rr.row] = q
            rule.notify_pivot(q, rr.row, None, improvement > 1e-12 * (1.0 + abs(z)))

            # periodic *or* fill-triggered refactorisation
            if (
                opts.refactor_period
                and basisrep.updates_since_refactor >= opts.refactor_period
            ) or basisrep.needs_refresh():
                if not self._recover():
                    return SolveStatus.NUMERICAL, z, iters
                z = float(c_full[basis] @ beta)

        return SolveStatus.ITERATION_LIMIT, z, iters

    def _recover(self) -> bool:
        """Refactorise from the basis' CSC columns and recompute β."""
        try:
            with self.hooks.span("engine.refactor"):
                self.basisrep.refactorize(
                    basis_columns_csc(self.prep, self.basis)
                )
        except SingularBasisError:
            return False
        self.stats.refactorizations += 1
        self.beta[:] = self.basisrep.ftran(self.prep.b)
        np.clip(self.beta, 0.0, None, out=self.beta)
        return True

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued basic artificials out in favour of real columns.

        Identical policy to the dense revised solver; the transformed row
        comes from a sparse rmatvec and candidate columns are FTRANed
        through the sparse factors.
        """
        prep, basisrep = self.prep, self.basisrep
        basis, in_basis, beta = self.basis, self.in_basis, self.beta
        m, n = prep.m, prep.n_total
        w = np.dtype(self.options.dtype).itemsize
        nnz = prep.nnz
        row_cost = OpCost(
            flops=2 * nnz,
            bytes_read=nnz * (w + 4) + m * w,
            bytes_written=n * w,
        )
        for p in np.nonzero(basis >= n)[0]:
            e_p = np.zeros(m)
            e_p[p] = 1.0
            row_binv = basisrep.btran(e_p)
            alpha_row = prep.row_all(row_binv)
            self.recorder.charge("driveout", row_cost)
            candidates = np.nonzero(
                (~in_basis[:n]) & (np.abs(alpha_row) > 1e-7)
            )[0]
            if candidates.size == 0:
                continue  # redundant row
            for j in candidates[np.argsort(-np.abs(alpha_row[candidates]))]:
                alpha = basisrep.ftran(prep.column(int(j)))
                try:
                    basisrep.update(alpha, int(p), self.options.tol_pivot)
                except SingularBasisError:
                    continue
                theta = beta[p] / alpha[p] if alpha[p] != 0 else 0.0
                beta -= theta * alpha
                beta[p] = theta
                np.clip(beta, 0.0, None, out=beta)
                in_basis[basis[p]] = False
                in_basis[int(j)] = True
                basis[p] = int(j)
                break

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def standard_extras(self, result: SolveResult) -> None:
        result.extra["a_nnz"] = self.prep.nnz
        result.extra["lu_nnz"] = self.basisrep.lu_nnz
        result.extra["eta_nnz"] = self.basisrep.eta_nnz
        result.extra["fill_ratio"] = self.basisrep.fill_ratio

    def extract(self, result: SolveResult) -> None:
        attach_standard_solution(result, self.prep, self.basis, self.beta)

"""Basis-inverse representations for the revised simplex method.

The revised simplex method needs three operations against the basis matrix B:

- **FTRAN**: solve ``B α = a`` (i.e. α = B⁻¹ a) — the updated entering column;
- **BTRAN**: solve ``πᵀ B = cᵀ`` (i.e. π = B⁻ᵀ c) — the simplex multipliers;
- **update**: replace the column in position p by the entering column.

Two representations are provided, matching the A2 ablation:

- :class:`ExplicitInverseBasis` — B⁻¹ stored densely, updated in place with
  the rank-1 eta transformation ``B⁻¹ ← B⁻¹ + (η − e_p) (B⁻¹)_{p,·}``.  This
  is the paper's GPU scheme (a GER per iteration); here it serves the CPU
  comparator.
- :class:`ProductFormBasis` — product form of the inverse: a dense base
  inverse refreshed at refactorisation plus a growing eta file; FTRAN/BTRAN
  apply the etas in O(m) each.  Cheaper per update, more expensive per
  solve as the eta file grows — the classic trade the ablation measures.

Both support :meth:`refactorize` (rebuild from the current basis columns),
which bounds error accumulation; the solvers call it periodically and after
numerical trouble.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SingularBasisError
from repro.perfmodel.cpu_model import CpuCostRecorder
from repro.perfmodel.ops import OpCost


def eta_from_alpha(alpha: np.ndarray, p: int, tol_pivot: float) -> np.ndarray:
    """The eta column η of the pivot transformation.

    η_i = −α_i/α_p for i ≠ p, η_p = 1/α_p.  Applying
    ``E = I with column p := η`` to any vector performs the Gauss–Jordan
    elimination of the pivot step.
    """
    pivot = alpha[p]
    if abs(pivot) <= tol_pivot:
        raise SingularBasisError(f"pivot {pivot!r} below tolerance {tol_pivot}")
    eta = -alpha / pivot
    eta[p] = 1.0 / pivot
    return eta


def apply_eta(y: np.ndarray, eta: np.ndarray, p: int) -> None:
    """In place: y ← E y for the eta transformation (E as above)."""
    yp = y[p]
    if yp != 0.0:
        y += eta * yp
        y[p] -= yp


def apply_eta_transposed(r: np.ndarray, eta: np.ndarray, p: int) -> None:
    """In place: rᵀ ← rᵀ E, i.e. r_p ← r·η, other entries unchanged."""
    r[p] = float(r @ eta)


class BasisRepresentation(abc.ABC):
    """Common interface of the basis-inverse schemes."""

    def __init__(self, m: int, recorder: CpuCostRecorder | None = None):
        self.m = m
        self.recorder = recorder
        #: Eta updates applied since the last refactorisation.
        self.updates_since_refactor = 0

    def _charge(self, name: str, cost: OpCost) -> None:
        if self.recorder is not None:
            self.recorder.charge(name, cost)

    @abc.abstractmethod
    def reset_identity(self) -> None:
        """Set B⁻¹ = I (the phase-1 starting basis is the identity)."""

    @abc.abstractmethod
    def ftran(self, col: np.ndarray) -> np.ndarray:
        """Return α = B⁻¹ col."""

    @abc.abstractmethod
    def btran(self, row: np.ndarray) -> np.ndarray:
        """Return π with πᵀ = rowᵀ B⁻¹."""

    @abc.abstractmethod
    def update(self, alpha: np.ndarray, p: int, tol_pivot: float) -> None:
        """Pivot: basis column p replaced; α is FTRAN of the entering col."""

    @abc.abstractmethod
    def refactorize(self, basis_columns: np.ndarray) -> None:
        """Rebuild exactly from the m×m matrix of current basis columns."""


class ExplicitInverseBasis(BasisRepresentation):
    """Dense explicit B⁻¹ with in-place rank-1 eta updates."""

    def __init__(self, m: int, recorder: CpuCostRecorder | None = None):
        super().__init__(m, recorder)
        self.binv = np.eye(m)

    def reset_identity(self) -> None:
        self.binv = np.eye(self.m)
        self.updates_since_refactor = 0

    def ftran(self, col: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        self._charge(
            "ftran",
            OpCost(flops=2 * m * m, bytes_read=(m * m + m) * w, bytes_written=m * w),
        )
        return self.binv @ col

    def btran(self, row: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        self._charge(
            "btran",
            OpCost(flops=2 * m * m, bytes_read=(m * m + m) * w, bytes_written=m * w),
        )
        return row @ self.binv

    def update(self, alpha: np.ndarray, p: int, tol_pivot: float) -> None:
        eta = eta_from_alpha(alpha, p, tol_pivot)
        row_p = self.binv[p, :].copy()
        eta_minus_ep = eta.copy()
        eta_minus_ep[p] -= 1.0
        self.binv += np.outer(eta_minus_ep, row_p)
        self.updates_since_refactor += 1
        m = self.m
        w = 8
        self._charge(
            "update.eta",
            OpCost(
                flops=2 * m * m + 2 * m,
                bytes_read=(m * m + 2 * m) * w,
                bytes_written=m * m * w,
            ),
        )

    def refactorize(self, basis_columns: np.ndarray) -> None:
        m = self.m
        try:
            self.binv = np.linalg.solve(basis_columns, np.eye(m))
        except np.linalg.LinAlgError:
            raise SingularBasisError("basis matrix is singular at refactorisation") from None
        self.updates_since_refactor = 0
        w = 8
        self._charge(
            "refactor",
            OpCost(
                flops=(2.0 / 3.0) * m**3 + 2.0 * m**3,  # LU + m solves
                bytes_read=2 * m * m * w,
                bytes_written=m * m * w,
            ),
        )


class ProductFormBasis(BasisRepresentation):
    """Product form of the inverse: dense base + eta file."""

    def __init__(self, m: int, recorder: CpuCostRecorder | None = None):
        super().__init__(m, recorder)
        self.base_inv = np.eye(m)
        self.etas: list[tuple[int, np.ndarray]] = []

    @property
    def eta_count(self) -> int:
        return len(self.etas)

    def reset_identity(self) -> None:
        self.base_inv = np.eye(self.m)
        self.etas.clear()
        self.updates_since_refactor = 0

    def ftran(self, col: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        y = self.base_inv @ col
        for p, eta in self.etas:
            apply_eta(y, eta, p)
        self._charge(
            "ftran",
            OpCost(
                flops=2 * m * m + 2 * m * len(self.etas),
                bytes_read=(m * m + m + 2 * m * len(self.etas)) * w,
                bytes_written=m * w,
            ),
        )
        return y

    def btran(self, row: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        r = np.array(row, dtype=np.float64, copy=True)
        for p, eta in reversed(self.etas):
            apply_eta_transposed(r, eta, p)
        result = r @ self.base_inv
        self._charge(
            "btran",
            OpCost(
                flops=2 * m * m + 2 * m * len(self.etas),
                bytes_read=(m * m + m + 2 * m * len(self.etas)) * w,
                bytes_written=m * w,
            ),
        )
        return result

    def update(self, alpha: np.ndarray, p: int, tol_pivot: float) -> None:
        eta = eta_from_alpha(alpha, p, tol_pivot)
        self.etas.append((p, eta))
        self.updates_since_refactor += 1
        w = 8
        self._charge(
            "update.eta",
            OpCost(flops=2 * self.m, bytes_read=self.m * w, bytes_written=self.m * w),
        )

    def refactorize(self, basis_columns: np.ndarray) -> None:
        m = self.m
        try:
            self.base_inv = np.linalg.solve(basis_columns, np.eye(m))
        except np.linalg.LinAlgError:
            raise SingularBasisError("basis matrix is singular at refactorisation") from None
        self.etas.clear()
        self.updates_since_refactor = 0
        w = 8
        self._charge(
            "refactor",
            OpCost(
                flops=(2.0 / 3.0) * m**3 + 2.0 * m**3,
                bytes_read=2 * m * m * w,
                bytes_written=m * m * w,
            ),
        )


class LUBasis(BasisRepresentation):
    """LU factorisation of B (scipy) with an eta file on top.

    The modern CPU scheme: refactorisation computes P·L·U = B once
    (O(m³/3), half the explicit-inverse cost and numerically backward
    stable); FTRAN/BTRAN are triangular solves; pivots append to an eta
    file exactly as in the product form.
    """

    def __init__(self, m: int, recorder: CpuCostRecorder | None = None):
        super().__init__(m, recorder)
        import scipy.linalg as sla

        self._sla = sla
        self._lu = sla.lu_factor(np.eye(m))
        self.etas: list[tuple[int, np.ndarray]] = []

    @property
    def eta_count(self) -> int:
        return len(self.etas)

    def reset_identity(self) -> None:
        self._lu = self._sla.lu_factor(np.eye(self.m))
        self.etas.clear()
        self.updates_since_refactor = 0

    def ftran(self, col: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        y = self._sla.lu_solve(self._lu, col)
        for p, eta in self.etas:
            apply_eta(y, eta, p)
        self._charge(
            "ftran",
            OpCost(
                flops=2 * m * m + 2 * m * len(self.etas),
                bytes_read=(m * m + m + 2 * m * len(self.etas)) * w,
                bytes_written=m * w,
            ),
        )
        return y

    def btran(self, row: np.ndarray) -> np.ndarray:
        m = self.m
        w = 8
        r = np.array(row, dtype=np.float64, copy=True)
        for p, eta in reversed(self.etas):
            apply_eta_transposed(r, eta, p)
        result = self._sla.lu_solve(self._lu, r, trans=1)
        self._charge(
            "btran",
            OpCost(
                flops=2 * m * m + 2 * m * len(self.etas),
                bytes_read=(m * m + m + 2 * m * len(self.etas)) * w,
                bytes_written=m * w,
            ),
        )
        return result

    def update(self, alpha: np.ndarray, p: int, tol_pivot: float) -> None:
        eta = eta_from_alpha(alpha, p, tol_pivot)
        self.etas.append((p, eta))
        self.updates_since_refactor += 1
        w = 8
        self._charge(
            "update.eta",
            OpCost(flops=2 * self.m, bytes_read=self.m * w, bytes_written=self.m * w),
        )

    def refactorize(self, basis_columns: np.ndarray) -> None:
        import warnings

        m = self.m
        try:
            with warnings.catch_warnings():
                # scipy emits LinAlgWarning on exact singularity; we turn it
                # into the library's SingularBasisError via the diag check
                warnings.simplefilter("ignore")
                self._lu = self._sla.lu_factor(basis_columns)
        except (np.linalg.LinAlgError, ValueError):
            raise SingularBasisError("basis matrix is singular at refactorisation") from None
        # lu_factor does not raise on exact singularity; check the diagonal
        if np.any(np.abs(np.diag(self._lu[0])) < 1e-300):
            raise SingularBasisError("basis matrix is singular at refactorisation")
        self.etas.clear()
        self.updates_since_refactor = 0
        w = 8
        self._charge(
            "refactor",
            OpCost(
                flops=(2.0 / 3.0) * m**3,
                bytes_read=m * m * w,
                bytes_written=m * m * w,
            ),
        )


def make_basis(
    kind: str, m: int, recorder: CpuCostRecorder | None = None
) -> BasisRepresentation:
    """Instantiate a basis representation by option name."""
    if kind == "explicit":
        return ExplicitInverseBasis(m, recorder)
    if kind == "pfi":
        return ProductFormBasis(m, recorder)
    if kind == "lu":
        return LUBasis(m, recorder)
    if kind == "sparse-lu":
        from repro.simplex.sparse_basis import SparseLUBasis

        return SparseLUBasis(m, recorder)
    raise ValueError(f"unknown basis update {kind!r}")

"""Entering-variable (pricing) rules.

A pricing rule looks at the reduced costs of the *eligible* columns and
picks the entering variable — the decision that dominates simplex iteration
counts.  Rules implemented:

- **Dantzig**: most negative reduced cost.  Fast convergence in practice,
  can cycle on degenerate problems.
- **Bland**: lowest-index column with negative reduced cost.  Provably
  anti-cycling, often slow.
- **Hybrid**: Dantzig until the objective stalls for ``stall_window``
  iterations, then Bland until progress resumes — the practical compromise.
- **Devex** (tableau solvers): Dantzig on reference-framework-weighted
  reduced costs ``d_j² / w_j`` with the classic multiplicative weight update.
- **Steepest edge** (tableau solvers): exact edge norms from the updated
  tableau columns, ``d_j² / (1 + ‖ᾱ_j‖²)``.

All rules receive the full reduced-cost vector plus an eligibility mask and
return a *global column index* (or ``None`` at optimality).  Ties break to
the lowest index everywhere, keeping every solver in the library pivot-for-
pivot deterministic.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import SolverError


class PricingRule(abc.ABC):
    """Stateful entering-variable rule over a fixed column set."""

    #: Rules that need the updated tableau column (ᾱ) per pivot.
    needs_tableau: bool = False

    @abc.abstractmethod
    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        """Pick the entering column.

        Parameters
        ----------
        d:
            Reduced costs for every column (basic columns included; they are
            excluded via ``eligible``).
        eligible:
            Boolean mask of columns allowed to enter.
        tol:
            Optimality tolerance: a column qualifies when ``d_j < -tol``.

        Returns the global column index, or ``None`` when no column
        qualifies (current basis optimal).
        """

    def notify_pivot(
        self,
        q: int,
        p_row: int,
        alpha: np.ndarray | None,
        improved: bool,
    ) -> None:
        """Called after each pivot: entering column ``q``, pivot row
        ``p_row``, the updated entering column ``alpha`` (``None`` for
        revised solvers that don't carry the tableau) and whether the
        objective strictly improved."""

    def reset(self, n_cols: int) -> None:
        """Re-initialise any per-column state for a phase with n columns."""


class DantzigRule(PricingRule):
    """Most negative reduced cost, lowest index on ties."""

    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        masked = np.where(eligible, d, np.inf)
        q = int(np.argmin(masked))
        return q if masked[q] < -tol else None


class BlandRule(PricingRule):
    """Lowest-index negative reduced cost (anti-cycling)."""

    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        hits = np.nonzero(eligible & (d < -tol))[0]
        return int(hits[0]) if hits.size else None


class HybridRule(PricingRule):
    """Dantzig with an automatic Bland fallback on objective stalls.

    Counts consecutive non-improving pivots; at ``stall_window`` it switches
    to Bland (guaranteeing escape from any cycle), and switches back to
    Dantzig after ``recovery`` improving pivots.
    """

    def __init__(self, stall_window: int = 40, recovery: int = 5):
        if stall_window < 1:
            raise SolverError("stall_window must be >= 1")
        self.stall_window = stall_window
        self.recovery = recovery
        self._dantzig = DantzigRule()
        self._bland = BlandRule()
        self._stalled = 0
        self._improved_streak = 0
        self._using_bland = False
        #: Number of Dantzig→Bland switches (reported as bland_activations).
        self.activations = 0

    def reset(self, n_cols: int) -> None:
        # Clears the activation counter too: callers flush per-phase counts
        # into their stats before resetting, and a stale counter would be
        # double-counted into the next phase's total.
        self._stalled = 0
        self._improved_streak = 0
        self._using_bland = False
        self.activations = 0

    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        rule = self._bland if self._using_bland else self._dantzig
        return rule.select(d, eligible, tol)

    def notify_pivot(self, q, p_row, alpha, improved) -> None:
        if improved:
            self._stalled = 0
            if self._using_bland:
                self._improved_streak += 1
                if self._improved_streak >= self.recovery:
                    self._using_bland = False
                    self._improved_streak = 0
        else:
            self._stalled += 1
            self._improved_streak = 0
            if not self._using_bland and self._stalled >= self.stall_window:
                self._using_bland = True
                self.activations += 1
                self._stalled = 0


class DevexRule(PricingRule):
    """Devex pricing (Harris 1973) with the multiplicative weight update.

    Approximates steepest-edge using reference weights ``w_j`` updated from
    the pivot column only — no extra BTRANs.  Requires the updated entering
    column each pivot, so it is offered by the tableau solvers.
    """

    needs_tableau = True

    def __init__(self):
        self._weights: np.ndarray | None = None
        self._alpha_row: np.ndarray | None = None

    def reset(self, n_cols: int) -> None:
        self._weights = np.ones(n_cols)

    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        if self._weights is None:
            self.reset(d.size)
        elif self._weights.size != d.size:
            # A silent re-init here would discard the learned reference
            # weights mid-solve.  Column counts only legitimately change at
            # a phase boundary, where the solver calls reset() explicitly.
            raise SolverError(
                f"devex weights sized {self._weights.size} priced against "
                f"{d.size} columns; call reset() at phase transitions"
            )
        negative = eligible & (d < -tol)
        if not negative.any():
            return None
        score = np.where(negative, d * d / self._weights, -np.inf)
        return int(np.argmax(score))

    def set_pivot_row(self, alpha_row: np.ndarray) -> None:
        """Provide the pivot row ᾱ_{p,·} (over all columns) for the update."""
        self._alpha_row = alpha_row

    def notify_pivot(self, q, p_row, alpha, improved) -> None:
        if self._weights is None or self._alpha_row is None:
            return
        w_q = self._weights[q]
        a_pq = self._alpha_row[q]
        if abs(a_pq) < 1e-300:
            return
        ratio = (self._alpha_row / a_pq) ** 2 * w_q
        self._weights = np.maximum(self._weights, ratio)
        self._weights[q] = max(w_q / (a_pq * a_pq), 1.0)
        self._alpha_row = None


class SteepestEdgeRule(PricingRule):
    """Exact steepest edge from the updated tableau columns.

    Picks ``argmax d_j² / γ_j`` with ``γ_j = 1 + ‖ᾱ_j‖²``; the tableau
    solver hands the full updated tableau in via :meth:`set_tableau`.
    """

    needs_tableau = True

    def __init__(self):
        self._gamma: np.ndarray | None = None

    def reset(self, n_cols: int) -> None:
        self._gamma = None

    def set_tableau(self, tableau: np.ndarray) -> None:
        """Recompute γ from the current updated tableau (m × n)."""
        self._gamma = 1.0 + np.sum(tableau * tableau, axis=0)

    def select(self, d: np.ndarray, eligible: np.ndarray, tol: float) -> int | None:
        if self._gamma is None:
            raise SolverError("steepest-edge rule used without tableau data")
        negative = eligible & (d < -tol)
        if not negative.any():
            return None
        score = np.where(negative, d * d / self._gamma, -np.inf)
        return int(np.argmax(score))


def make_pricing_rule(name: str, stall_window: int = 40) -> PricingRule:
    """Instantiate a pricing rule by option name."""
    if name == "dantzig":
        return DantzigRule()
    if name == "bland":
        return BlandRule()
    if name == "hybrid":
        return HybridRule(stall_window=stall_window)
    if name == "devex":
        return DevexRule()
    if name == "steepest-edge":
        return SteepestEdgeRule()
    raise SolverError(f"unknown pricing rule {name!r}")

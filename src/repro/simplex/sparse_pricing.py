"""Sectioned (partial) pricing over a CSC constraint matrix.

Full Dantzig pricing computes every reduced cost every iteration — 2·nnz
flops that dominate sparse revised simplex.  Partial pricing splits the
columns into contiguous *sections* and scans them round-robin: reduced
costs are computed one section at a time (from the section's CSC slice, so
the cost scales with the section's nnz), and the first section containing
an attractive column yields the entering variable.  Optimality is only
declared after a full clean cycle over every section, so the rule is exact
— it changes which improving column is chosen, never whether one exists.

Three modes mirror :mod:`repro.simplex.pricing`:

- ``dantzig`` — most negative reduced cost within the first section that
  has one (classic partial pricing);
- ``bland``   — the scan always restarts at section 0 and returns the
  lowest-index eligible column, which is *global* Bland's rule
  (anti-cycling guarantee preserved);
- ``hybrid``  — partial Dantzig with the same stall-triggered Bland
  fallback as :class:`~repro.simplex.pricing.HybridRule`.

Modeled CPU time is charged per section actually scanned, so the recorder
sees the savings partial pricing exists to provide.
"""

from __future__ import annotations

import numpy as np

from repro.perfmodel.cpu_model import CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.sparse.base import segment_sums
from repro.sparse.csc import CscMatrix

_INDEX_BYTES = 4

#: Target number of sections (columns are split evenly; small problems
#: collapse to a single section, i.e. plain full pricing).
_TARGET_SECTIONS = 8

#: Minimum columns per section — below this, more sections only add
#: per-scan overhead without saving meaningful work.
_MIN_SECTION = 32


class SparsePartialPricing:
    """Round-robin sectioned pricing with Dantzig/Bland/hybrid selection."""

    def __init__(
        self,
        a: CscMatrix,
        mode: str,
        stall_window: int,
        recorder: CpuCostRecorder | None = None,
        dtype=np.float64,
    ):
        self.a = a
        self.mode = mode
        self.stall_window = stall_window
        self.recorder = recorder
        self._w = np.dtype(dtype).itemsize
        n = a.shape[1]
        n_sections = max(1, min(_TARGET_SECTIONS, n // _MIN_SECTION))
        self._bounds = np.linspace(0, n, n_sections + 1).astype(np.int64)
        self.n_sections = n_sections
        self.using_bland = mode == "bland"
        self.stalled = 0
        self.improved_streak = 0
        #: Dantzig→Bland switches this phase (flushed into IterationStats).
        self.activations = 0
        self._cursor = 0

    def reset(self, n: int) -> None:
        self.using_bland = self.mode == "bland"
        self.stalled = 0
        self.improved_streak = 0
        self._cursor = 0

    # -- section scan ------------------------------------------------------

    def _section_reduced_costs(
        self, s: int, pi: np.ndarray, c: np.ndarray
    ) -> tuple[int, np.ndarray]:
        """(section start, reduced costs of the section's columns)."""
        s0, s1 = int(self._bounds[s]), int(self._bounds[s + 1])
        lo, hi = int(self.a.indptr[s0]), int(self.a.indptr[s1])
        prods = self.a.data[lo:hi] * pi[self.a.indices[lo:hi]]
        d = c[s0:s1] - segment_sums(prods, self.a.indptr[s0 : s1 + 1] - lo)
        if self.recorder is not None:
            sec_nnz = hi - lo
            w = self._w
            self.recorder.charge(
                "pricing",
                OpCost(
                    flops=2.0 * sec_nnz,
                    bytes_read=sec_nnz * (w + _INDEX_BYTES) + sec_nnz * w,
                    bytes_written=(s1 - s0) * w,
                ),
            )
        return s0, d

    def select(
        self,
        pi: np.ndarray,
        c: np.ndarray,
        in_basis: np.ndarray,
        tol: float,
    ) -> tuple[int, float] | None:
        """Entering column and its reduced cost, or None at optimality.

        ``c`` and ``in_basis`` are indexed over the real columns (length
        >= n); ``pi`` are the simplex multipliers from BTRAN.
        """
        if self.using_bland:
            # global Bland: lowest eligible index, so always scan from 0
            for s in range(self.n_sections):
                s0, d = self._section_reduced_costs(s, pi, c)
                elig = np.nonzero(
                    (d < -tol) & ~in_basis[s0 : s0 + d.size]
                )[0]
                if elig.size:
                    q = s0 + int(elig[0])
                    return q, float(d[elig[0]])
            return None
        for offset in range(self.n_sections):
            s = (self._cursor + offset) % self.n_sections
            s0, d = self._section_reduced_costs(s, pi, c)
            masked = np.where(in_basis[s0 : s0 + d.size], 0.0, d)
            j = int(np.argmin(masked)) if masked.size else 0
            if masked.size and masked[j] < -tol:
                self._cursor = s  # stay on a productive section
                return s0 + j, float(masked[j])
        return None

    # -- hybrid switching (same policy as the dense/GPU hybrid rules) ------

    def notify_pivot(self, q, p, unused, improved: bool) -> None:
        if self.mode != "hybrid":
            return
        if improved:
            self.stalled = 0
            if self.using_bland:
                self.improved_streak += 1
                if self.improved_streak >= 5:
                    self.using_bland = False
                    self.improved_streak = 0
        else:
            self.stalled += 1
            self.improved_streak = 0
            if not self.using_bland and self.stalled >= self.stall_window:
                self.using_bland = True
                self.activations += 1
                self.stalled = 0

"""Shared solver plumbing: standardisation, scaling, column access, recovery.

Every solver (CPU and GPU) consumes the same :class:`PreparedLP`: the
standard-form data, optionally scaled, with uniform access to columns —
including the *implicit artificial columns* ``e_i`` indexed as
``n_total + i``, which are never materialised (they are identity columns,
and materialising them wastes exactly the memory a GPU can least afford).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.lp.problem import LPProblem
from repro.lp.scaling import ScalingResult, geometric_mean_scaling
from repro.lp.standard_form import StandardFormLP, to_standard_form
from repro.result import SolveResult
from repro.simplex.options import SolverOptions
from repro.sparse.base import SparseMatrix
from repro.sparse.csc import CscMatrix
from repro.status import SolveStatus

#: Phase-1 feasibility threshold: the artificial objective below which the
#: problem is declared feasible (relative to the rhs scale).
PHASE1_TOL = 1e-7


@dataclasses.dataclass
class PreparedLP:
    """Solver-ready standard-form data with implicit artificials."""

    std: StandardFormLP
    scaling: ScalingResult | None
    a: "np.ndarray | CscMatrix"
    b: np.ndarray
    c: np.ndarray
    m: int
    n_total: int

    @property
    def is_sparse(self) -> bool:
        return isinstance(self.a, SparseMatrix)

    @property
    def nnz(self) -> int:
        if self.is_sparse:
            return self.a.nnz
        return int(np.count_nonzero(self.a))

    def column(self, j: int) -> np.ndarray:
        """Standard-form column j (artificial ``e_i`` for j >= n_total)."""
        if j >= self.n_total:
            e = np.zeros(self.m)
            e[j - self.n_total] = 1.0
            return e
        if self.is_sparse:
            return self.a.getcol_dense(j)
        return self.a[:, j].copy()

    def price_all(self, pi: np.ndarray) -> np.ndarray:
        """πᵀA over the real (non-artificial) columns, length n_total."""
        if self.is_sparse:
            return self.a.rmatvec(pi)
        return pi @ self.a

    def row_all(self, row: np.ndarray) -> np.ndarray:
        """rowᵀA over the real columns (used by artificial drive-out)."""
        return self.price_all(row)

    def basis_matrix(self, basis: np.ndarray) -> np.ndarray:
        """The dense m×m matrix of the current basis columns."""
        cols = [self.column(int(j)) for j in basis]
        return np.column_stack(cols) if cols else np.zeros((self.m, 0))

    def price_flops(self) -> float:
        """FLOPs of one full pricing pass (2·nnz for sparse, 2mn dense)."""
        return 2.0 * (self.nnz if self.is_sparse else self.m * self.n_total)


def prepare(
    problem: "LPProblem | StandardFormLP",
    options: SolverOptions,
    *,
    range_bounds_as_rows: bool = True,
) -> PreparedLP:
    """Standardise (and optionally scale) a problem for any solver."""
    std = (
        problem
        if isinstance(problem, StandardFormLP)
        else to_standard_form(problem, range_bounds_as_rows=range_bounds_as_rows)
    )
    scaling: ScalingResult | None = None
    a, b, c = std.a, std.b, std.c
    if options.scale:
        scaling = geometric_mean_scaling(a, b, c)
        a, b, c = scaling.a, scaling.b, scaling.c
    m, n_total = std.num_rows, std.num_cols
    return PreparedLP(std=std, scaling=scaling, a=a, b=b, c=c, m=m, n_total=n_total)


def validate_warm_basis(prep: PreparedLP, basis) -> np.ndarray:
    """Validate a user-supplied starting basis (warm start).

    Must contain exactly m distinct standard-form column indices (artificial
    indices ``n_total + i`` are allowed — a previous solve may have left a
    redundant-row artificial basic).  Raises :class:`SolverError` otherwise.
    """
    from repro.errors import SolverError

    basis = np.asarray(basis, dtype=np.int64)
    if basis.shape != (prep.m,):
        raise SolverError(
            f"warm-start basis must have {prep.m} entries, got {basis.shape}"
        )
    if np.unique(basis).size != prep.m:
        raise SolverError("warm-start basis contains duplicate columns")
    if basis.min() < 0 or basis.max() >= prep.n_total + prep.m:
        raise SolverError("warm-start basis index out of range")
    return basis.copy()


def initial_basis(prep: PreparedLP) -> tuple[np.ndarray, bool]:
    """The crash basis: +1 slacks where available, artificials elsewhere.

    Both slack and artificial starting columns are identity columns, so the
    initial basis matrix is I and B⁻¹ = I regardless of the mix.  Returns
    (basis indices, needs_phase1).
    """
    slack = prep.std.slack_of_row
    basis = np.where(slack >= 0, slack, prep.n_total + np.arange(prep.m))
    needs_phase1 = bool(np.any(slack < 0))
    return basis.astype(np.int64), needs_phase1


def phase1_costs(prep: PreparedLP) -> np.ndarray:
    """Standard+artificial cost vector of the phase-1 objective Σ artificials."""
    c1 = np.zeros(prep.n_total + prep.m)
    c1[prep.n_total :] = 1.0
    return c1


def phase2_costs(prep: PreparedLP) -> np.ndarray:
    """Standard+artificial cost vector of the true objective (artificials 0)."""
    return np.concatenate([prep.c, np.zeros(prep.m)])


def extract_solution(
    prep: PreparedLP, basis: np.ndarray, beta: np.ndarray
) -> tuple[np.ndarray, float, np.ndarray]:
    """(x in original space, objective in original orientation, x_std).

    Handles unscaling: β lives in the scaled space when scaling is on; the
    standard-form point is unscaled before recovery and the objective is
    recomputed from unscaled data (exact, no dual bookkeeping needed).
    """
    x_std = np.zeros(prep.n_total)
    real = basis < prep.n_total
    x_std[basis[real]] = beta[real]
    if prep.scaling is not None:
        x_full = np.zeros(prep.n_total)
        x_full[: prep.n_total] = x_std
        x_std = prep.scaling.unscale_x(x_full)[: prep.n_total]
    z_std = float(prep.std.c @ x_std)
    objective = prep.std.original_objective(z_std)
    x = prep.std.recover_x(x_std)
    return x, objective, x_std


def failure_result(status: SolveStatus, solver: str) -> SolveResult:
    """A result carrying only a terminal status (infeasible/unbounded/...)."""
    return SolveResult(status=status, solver=solver)

"""Dual simplex method (CPU).

The primal simplex walks primal-feasible bases toward dual feasibility; the
dual simplex does the opposite: it starts from a **dual-feasible** basis
(all reduced costs non-negative) that may violate primal feasibility
(some basic values negative) and drives the infeasibilities out.

Why it exists in this library: after solving an LP, *changing the right-hand
side* leaves the optimal basis dual feasible (reduced costs don't involve b)
but typically primal infeasible — precisely the dual simplex's starting
point.  Re-optimising with it after an rhs perturbation costs a handful of
pivots where a cold primal solve replays the whole path (experiment A6).

Per iteration (Lemke's method, recompute-style like the primal solver):

1. **leaving row**  p = argmin x_B; stop OPTIMAL when x_B >= -tol
   (dual feasible + primal feasible = optimal).
2. **row generation**  w = B⁻ᵀ e_p (BTRAN), ᾱ_{p·} = wᵀA.
3. **entering column**  among nonbasic j with ᾱ_{pj} < -tol, pick
   q = argmin d_j / (−ᾱ_{pj}) — the dual ratio test, which preserves
   d >= 0.  No candidate ⇒ the primal is **infeasible** (dual unbounded).
4. **pivot**  α = B⁻¹a_q; θ_P = x_{B_p} / ᾱ_{pq} (> 0 since both negative);
   x_B ← x_B − θ_P α, x_{B_p} := θ_P; rank-1 basis update.

The solver requires a dual-feasible start (pass the previous optimal basis
via ``initial_basis_hint``); with none, it attempts the crash basis and
falls back to an exact primal pre-solve of the phase-1 type only if
``allow_primal_fallback`` is set.

Runs as a :class:`~repro.engine.backend.SolverBackend`: it is the
single-phase backend (``needs_phase1`` is always False) and the one that
exercises the lifecycle's early-return path (the primal fallback produces
a finished result before the phase driver starts).
"""

from __future__ import annotations

import numpy as np

from repro.engine import SolverBackend, attach_standard_solution
from repro.errors import SingularBasisError, SolverError
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.cpu_model import CpuCostModel, CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import CORE2_CPU_PARAMS, CpuModelParams
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.basis import make_basis
from repro.simplex.common import (
    initial_basis,
    phase2_costs,
    prepare,
    validate_warm_basis,
)
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


class DualSimplexSolver(SolverBackend):
    """CPU dual simplex for re-optimisation from a dual-feasible basis."""

    name = "dual-cpu"
    accepts_warm_start = True

    def __init__(
        self,
        options: SolverOptions | None = None,
        cpu_params: CpuModelParams = CORE2_CPU_PARAMS,
        allow_primal_fallback: bool = True,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing not in ("dantzig", "bland", "hybrid"):
            raise SolverError("dual simplex supports dantzig/bland/hybrid row choice")
        self.allow_primal_fallback = allow_primal_fallback
        self.recorder = CpuCostRecorder(
            CpuCostModel(cpu_params), dtype=self.options.dtype
        )

    # -- engine backend interface --------------------------------------

    def begin(
        self, problem: "LPProblem | StandardFormLP", warm_hint
    ) -> "SolveResult | None":
        self.recorder.reset()
        opts = self.options
        self.prep = prep = prepare(problem, opts)
        m, n = prep.m, prep.n_total
        self.c_full = c_full = phase2_costs(prep)

        self.basisrep = basisrep = make_basis(opts.basis_update, m, self.recorder)
        if warm_hint is not None:
            basis = validate_warm_basis(prep, warm_hint)
            try:
                basisrep.refactorize(prep.basis_matrix(basis))
            except SingularBasisError:
                return self._fallback(problem, "singular warm basis")
        else:
            basis, _ = initial_basis(prep)

        # check dual feasibility of the start
        y = basisrep.btran(c_full[basis])
        d = c_full[:n] - prep.price_all(y)
        in_basis = np.zeros(n + m, dtype=bool)
        in_basis[basis] = True
        if np.any(d[~in_basis[:n]] < -1e-7):
            return self._fallback(problem, "start not dual feasible")

        self.basis = basis
        self.in_basis = in_basis
        self.x_b = basisrep.ftran(prep.b)
        self.stats = IterationStats()
        self.hooks.arm(
            clock=lambda: self.recorder.total_seconds,
            sections=lambda: self.recorder.by_op,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "dtype": np.dtype(opts.dtype).name,
            },
        )
        self.needs_phase1 = False
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        return self._iterate(
            self.prep, self.basisrep, self.basis, self.in_basis, self.x_b,
            self.c_full, self.stats,
        )

    # ------------------------------------------------------------------

    def _iterate(self, prep, basisrep, basis, in_basis, x_b, c_full, stats):
        opts = self.options
        m, n = prep.m, prep.n_total
        w_bytes = np.dtype(opts.dtype).itemsize
        cap = opts.iteration_cap(m, n)
        use_bland = opts.pricing == "bland"
        iters = 0
        feas_tol = 1e-9 * max(1.0, float(np.max(np.abs(prep.b), initial=0.0)))
        tr = self.hooks if self.hooks.enabled else None
        row_rule = "bland" if use_bland else "dantzig"

        def objective() -> float:
            # Host-side peek for the trace only; charges no modeled time.
            return float(c_full[basis] @ x_b)

        # artificial basics are boxed at [0, 0]: a *positive* artificial is
        # as infeasible as a negative structural (generalised dual rule)
        while iters < cap:
            iters += 1

            # 1: leaving row — the most violated basic value
            artificial = basis >= n
            violation = np.where(x_b < -feas_tol, -x_b, 0.0)
            over = artificial & (x_b > feas_tol)
            violation = np.where(over, x_b, violation)
            if use_bland:
                bad = np.nonzero(violation > 0)[0]
                if bad.size == 0:
                    if tr is not None:
                        tr.record(phase=2, iteration=iters, event="optimal",
                                  pricing_rule=row_rule, objective=objective())
                    return SolveStatus.OPTIMAL, iters
                p = int(bad[np.argmin(basis[bad])])
            else:
                p = int(np.argmax(violation))
                if violation[p] <= 0:
                    if tr is not None:
                        tr.record(phase=2, iteration=iters, event="optimal",
                                  pricing_rule=row_rule, objective=objective())
                    return SolveStatus.OPTIMAL, iters
            above_upper = bool(over[p])
            self.recorder.charge(
                "leaving",
                OpCost(flops=2 * m, bytes_read=m * w_bytes, bytes_written=w_bytes),
            )

            # 2: transformed row
            e_p = np.zeros(m)
            e_p[p] = 1.0
            w = basisrep.btran(e_p)
            alpha_row = prep.price_all(w)
            self.recorder.charge(
                "row_gen",
                OpCost(
                    flops=prep.price_flops(),
                    bytes_read=(prep.nnz if prep.is_sparse else m * n) * w_bytes,
                    bytes_written=n * w_bytes,
                ),
            )

            # 3: dual ratio test
            y = basisrep.btran(c_full[basis])
            d = c_full[:n] - prep.price_all(y)
            self.recorder.charge(
                "pricing",
                OpCost(
                    flops=prep.price_flops(),
                    bytes_read=(prep.nnz if prep.is_sparse else m * n) * w_bytes,
                    bytes_written=n * w_bytes,
                ),
            )
            if above_upper:
                # drive the over-its-bound artificial *down*: entering must
                # have a positive row entry
                eligible = (~in_basis[:n]) & (alpha_row > opts.tol_pivot)
                denom = alpha_row
            else:
                eligible = (~in_basis[:n]) & (alpha_row < -opts.tol_pivot)
                denom = -alpha_row
            candidates = np.nonzero(eligible)[0]
            if candidates.size == 0:
                if tr is not None:
                    tr.record(phase=2, iteration=iters, event="infeasible",
                              leaving_row=int(p), pricing_rule=row_rule,
                              objective=objective())
                return SolveStatus.INFEASIBLE, iters
            ratios = np.maximum(d[candidates], 0.0) / denom[candidates]
            best = float(ratios.min())
            tied = candidates[ratios <= best * (1.0 + 1e-12) + 1e-300]
            q = int(tied[0])  # lowest column index among ties (anti-cycling)

            # 4: pivot
            alpha = basisrep.ftran(prep.column(q))
            pivot = alpha[p]
            if abs(pivot) <= opts.tol_pivot:
                if tr is not None:
                    tr.record(phase=2, iteration=iters, event="numerical",
                              entering=int(q), leaving_row=int(p),
                              pivot=float(pivot), pricing_rule=row_rule,
                              objective=objective())
                return SolveStatus.NUMERICAL, iters
            theta_p = x_b[p] / pivot
            degenerate = abs(theta_p) <= opts.tol_zero
            if degenerate:
                stats.degenerate_steps += 1
            try:
                basisrep.update(alpha, p, opts.tol_pivot)
            except SingularBasisError:
                if tr is not None:
                    tr.record(phase=2, iteration=iters, event="numerical",
                              entering=int(q), leaving_row=int(p),
                              pivot=float(pivot), pricing_rule=row_rule,
                              objective=objective())
                return SolveStatus.NUMERICAL, iters
            x_b -= theta_p * alpha
            x_b[p] = theta_p
            self.recorder.charge(
                "update.beta",
                OpCost(flops=2 * m, bytes_read=2 * m * w_bytes,
                       bytes_written=m * w_bytes),
            )
            leaving_var = int(basis[p])
            in_basis[basis[p]] = False
            in_basis[q] = True
            basis[p] = q
            if tr is not None:
                tr.record(
                    phase=2, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(p),
                    leaving_var=leaving_var,
                    pivot=float(pivot), theta=float(theta_p),
                    ratio_ties=int(tied.size), pricing_rule=row_rule,
                    eta_count=int(basisrep.updates_since_refactor),
                    objective=objective(), degenerate=degenerate,
                )

            if (
                opts.refactor_period
                and basisrep.updates_since_refactor >= opts.refactor_period
            ):
                try:
                    with self.hooks.span("engine.refactor"):
                        basisrep.refactorize(prep.basis_matrix(basis))
                except SingularBasisError:
                    return SolveStatus.NUMERICAL, iters
                stats.refactorizations += 1
                x_b[:] = basisrep.ftran(prep.b)

        return SolveStatus.ITERATION_LIMIT, iters

    # ------------------------------------------------------------------

    def _fallback(self, problem, reason: str) -> SolveResult:
        """No dual-feasible start: defer to the primal solver (documented
        behaviour) or fail loudly."""
        if not self.allow_primal_fallback:
            raise SolverError(f"dual simplex cannot start: {reason}")
        from repro.simplex.revised_cpu import RevisedSimplexSolver

        result = RevisedSimplexSolver(self.options).solve(problem)
        result.solver = f"{self.name}(primal-fallback)"
        result.extra["dual_fallback_reason"] = reason
        return result

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        return TimingStats(
            modeled_seconds=self.recorder.total_seconds,
            wall_seconds=wall_seconds,
            kernel_breakdown=dict(self.recorder.by_op),
        )

    def extract(self, result: SolveResult) -> None:
        x_clip = np.clip(self.x_b, 0.0, None)
        attach_standard_solution(result, self.prep, self.basis, x_clip)

"""Sparse LU basis representation for the revised simplex method.

:class:`SparseLUBasis` is the sparse sibling of :class:`~repro.simplex.basis.LUBasis`:
the basis matrix B is factorised as ``B = L·U`` directly from its CSC
columns with a left-looking (Gilbert–Peierls) elimination — a depth-first
reach computation over the pattern of L finds the rows each column touches,
so the factorisation costs O(flops(L,U)) instead of O(m³).  Pivots append
*sparse* eta vectors to a product-form file (Forrest–Tomlin-style drop-in:
same ``update``/``ftran``/``btran``/``refactorize`` surface as the dense
schemes), and the structure reports a fill ratio so the solver can trigger
an early refactorisation when the factor plus eta file outgrow the basis.

Storage is column-wise in *elimination order* ``k = 0..m-1``:

- ``perm[k]``    — the original row chosen as pivot at step k (``pinv`` is
  its inverse: original row → elimination index, −1 while unpivoted);
- ``l_rows[k]/l_vals[k]`` — the below-diagonal entries of L's column k, as
  original row indices with values already divided by the pivot;
- ``u_rows[k]/u_vals[k]`` — the above-diagonal entries of U's column k, as
  elimination indices < k, plus the pivot ``u_diag[k]``.

FTRAN solves ``L z = P b`` forward in elimination order then ``U x = z``
backward; BTRAN runs the transposed solves in the opposite order.  Both
skip structurally-zero positions, so their cost — and the modeled CPU time
charged — scales with ``nnz(L) + nnz(U) + nnz(etas)`` rather than m².
"""

from __future__ import annotations

import numpy as np

from repro.errors import SingularBasisError
from repro.perfmodel.cpu_model import CpuCostRecorder
from repro.perfmodel.ops import OpCost
from repro.simplex.basis import BasisRepresentation
from repro.sparse.csc import CscMatrix

#: Host index width (the factor stores int64 row ids; modeled as 4-byte
#: indices to match the sparse-matrix cost convention of repro.gpu/repro.sparse).
_INDEX_BYTES = 4
_WORD = 8


class SparseLUBasis(BasisRepresentation):
    """Sparse LU factors of B plus a sparse product-form eta file."""

    def __init__(
        self,
        m: int,
        recorder: CpuCostRecorder | None = None,
        fill_limit: float = 4.0,
    ):
        super().__init__(m, recorder)
        #: Early-refresh trigger: refactorise when the eta file has grown
        #: the solve working set to ``fill_limit`` times the fresh factor —
        #: i.e. (nnz(LU) + nnz(etas)) > fill_limit * nnz(LU).  Growth is
        #: measured against the *fresh factor*, not the basis columns: a
        #: fill-heavy basis whose LU is large at refactorisation time must
        #: not re-trip the trigger on every pivot.
        self.fill_limit = float(fill_limit)
        self._identity()

    # -- bookkeeping -------------------------------------------------------

    def _identity(self) -> None:
        m = self.m
        self._perm = np.arange(m, dtype=np.int64)
        self._pinv = np.arange(m, dtype=np.int64)
        self._l_rows = [np.zeros(0, dtype=np.int64) for _ in range(m)]
        self._l_vals = [np.zeros(0) for _ in range(m)]
        self._u_rows = [np.zeros(0, dtype=np.int64) for _ in range(m)]
        self._u_vals = [np.zeros(0) for _ in range(m)]
        self._u_diag = np.ones(m)
        self._etas: list[tuple[int, np.ndarray, np.ndarray]] = []
        self.lu_nnz = m  # the unit diagonal
        self.eta_nnz = 0
        self._basis_nnz = m
        self.updates_since_refactor = 0

    @property
    def eta_count(self) -> int:
        return len(self._etas)

    @property
    def fill_ratio(self) -> float:
        """(nnz of factors + eta file) / nnz of the fresh factors."""
        return (self.lu_nnz + self.eta_nnz) / float(max(1, self.lu_nnz))

    def needs_refresh(self) -> bool:
        """True when eta growth says to refactorise before the period is up."""
        return self.updates_since_refactor > 0 and self.fill_ratio > self.fill_limit

    def _solve_work(self) -> int:
        return self.lu_nnz + self.eta_nnz

    def reset_identity(self) -> None:
        self._identity()

    # -- factorisation -----------------------------------------------------

    @staticmethod
    def _as_csc(basis_columns) -> CscMatrix:
        if isinstance(basis_columns, CscMatrix):
            return basis_columns
        return CscMatrix.from_dense(np.asarray(basis_columns, dtype=np.float64))

    def refactorize(self, basis_columns) -> None:
        """Rebuild L·U = B from the basis columns (dense array or CSC)."""
        a = self._as_csc(basis_columns)
        m = self.m
        if a.shape != (m, m):
            raise SingularBasisError(
                f"basis matrix must be {m}x{m}, got {a.shape}"
            )

        perm = np.full(m, -1, dtype=np.int64)
        pinv = np.full(m, -1, dtype=np.int64)
        l_rows: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * m
        l_vals: list[np.ndarray] = [np.zeros(0)] * m
        u_rows: list[np.ndarray] = [np.zeros(0, dtype=np.int64)] * m
        u_vals: list[np.ndarray] = [np.zeros(0)] * m
        u_diag = np.zeros(m)

        x = np.zeros(m)  # dense scratch, cleared per column via touch list
        visit_stamp = np.full(m, -1, dtype=np.int64)  # per-column DFS marker
        flops = 0.0
        lu_nnz = m

        for j in range(m):
            rows, vals = a.getcol(j)

            # symbolic: reach of the column pattern over L (DFS from every
            # already-pivoted pattern row), ascending elimination order
            reach: list[int] = []
            stack: list[int] = []
            for r in rows:
                k0 = pinv[r]
                if k0 >= 0 and visit_stamp[k0] != j:
                    stack.append(int(k0))
                    visit_stamp[k0] = j
            while stack:
                k = stack.pop()
                reach.append(k)
                for r in l_rows[k]:
                    k2 = pinv[r]
                    if k2 >= 0 and visit_stamp[k2] != j:
                        stack.append(int(k2))
                        visit_stamp[k2] = j
            reach.sort()

            # numeric: x := column j, then eliminate along the reach
            x[rows] = vals
            touched = [rows]
            for k in reach:
                xk = x[perm[k]]
                if xk != 0.0 and l_rows[k].size:
                    x[l_rows[k]] -= xk * l_vals[k]
                    touched.append(l_rows[k])
                    flops += 2.0 * l_rows[k].size

            touched_rows = np.unique(np.concatenate(touched))
            unpivoted = touched_rows[pinv[touched_rows] < 0]

            # partial pivoting over the unpivoted rows
            piv_row = -1
            piv_val = 0.0
            if unpivoted.size:
                cand_vals = x[unpivoted]
                best = int(np.argmax(np.abs(cand_vals)))
                piv_row = int(unpivoted[best])
                piv_val = float(cand_vals[best])
            if abs(piv_val) <= 1e-300:
                x[touched_rows] = 0.0
                raise SingularBasisError(
                    "basis matrix is singular at refactorisation "
                    f"(no admissible pivot in column {j})"
                )

            # U column: solved values at already-pivoted positions
            uk = [k for k in reach if x[perm[k]] != 0.0]
            u_rows[j] = np.asarray(uk, dtype=np.int64)
            u_vals[j] = x[self._take(perm, uk)]
            u_diag[j] = piv_val

            # L column: remaining unpivoted entries, scaled by the pivot
            below = unpivoted[(unpivoted != piv_row) & (x[unpivoted] != 0.0)]
            l_rows[j] = below
            l_vals[j] = x[below] / piv_val
            flops += float(below.size)

            perm[j] = piv_row
            pinv[piv_row] = j
            lu_nnz += int(u_rows[j].size + below.size)
            x[touched_rows] = 0.0

        self._perm, self._pinv = perm, pinv
        self._l_rows, self._l_vals = l_rows, l_vals
        self._u_rows, self._u_vals = u_rows, u_vals
        self._u_diag = u_diag
        self._etas = []
        self.lu_nnz = lu_nnz
        self.eta_nnz = 0
        self._basis_nnz = max(1, a.nnz)
        self.updates_since_refactor = 0

        self._charge(
            "refactor",
            OpCost(
                flops=flops,
                bytes_read=(a.nnz + lu_nnz) * (_WORD + _INDEX_BYTES),
                bytes_written=lu_nnz * (_WORD + _INDEX_BYTES),
            ),
        )

    @staticmethod
    def _take(arr: np.ndarray, idx: list[int]) -> np.ndarray:
        return arr[np.asarray(idx, dtype=np.int64)] if idx else np.zeros(0, dtype=arr.dtype)

    # -- solves ------------------------------------------------------------

    def ftran(self, col: np.ndarray) -> np.ndarray:
        m = self.m
        y = np.asarray(col, dtype=np.float64).copy()
        z = np.empty(m)
        # forward: L z = P col  (skip structurally/numerically zero steps)
        for k in range(m):
            zk = y[self._perm[k]]
            z[k] = zk
            if zk != 0.0 and self._l_rows[k].size:
                y[self._l_rows[k]] -= zk * self._l_vals[k]
        # backward: U x = z
        for k in range(m - 1, -1, -1):
            zk = z[k]
            if zk == 0.0:
                continue
            zk /= self._u_diag[k]
            z[k] = zk
            if self._u_rows[k].size:
                z[self._u_rows[k]] -= zk * self._u_vals[k]
        for p, rows, vals in self._etas:
            zp = z[p]
            if zp != 0.0:
                z[rows] += vals * zp
                z[p] -= zp
        work = self._solve_work()
        self._charge(
            "ftran",
            OpCost(
                flops=2.0 * work,
                bytes_read=work * (_WORD + _INDEX_BYTES) + m * _WORD,
                bytes_written=m * _WORD,
            ),
        )
        return z

    def btran(self, row: np.ndarray) -> np.ndarray:
        m = self.m
        r = np.array(row, dtype=np.float64, copy=True)
        for p, rows, vals in reversed(self._etas):
            r[p] = float(r[rows] @ vals)
        # forward: Uᵀ w = r (Uᵀ is lower-triangular in elimination order)
        w = np.empty(m)
        for k in range(m):
            rk = r[k]
            if self._u_rows[k].size:
                rk -= float(w[self._u_rows[k]] @ self._u_vals[k])
            w[k] = rk / self._u_diag[k]
        # backward: Lᵀ Pᵀ π = w, unknowns in original-row space
        pi = np.empty(m)
        for k in range(m - 1, -1, -1):
            wk = w[k]
            if self._l_rows[k].size:
                wk -= float(pi[self._l_rows[k]] @ self._l_vals[k])
            pi[self._perm[k]] = wk
        work = self._solve_work()
        self._charge(
            "btran",
            OpCost(
                flops=2.0 * work,
                bytes_read=work * (_WORD + _INDEX_BYTES) + m * _WORD,
                bytes_written=m * _WORD,
            ),
        )
        return pi

    # -- updates -----------------------------------------------------------

    def update(self, alpha: np.ndarray, p: int, tol_pivot: float) -> None:
        pivot = float(alpha[p])
        if abs(pivot) <= tol_pivot:
            raise SingularBasisError(
                f"pivot {pivot!r} below tolerance {tol_pivot}"
            )
        rows = np.nonzero(alpha)[0].astype(np.int64)
        vals = -alpha[rows] / pivot
        vals[np.searchsorted(rows, p)] = 1.0 / pivot
        self._etas.append((int(p), rows, vals))
        self.eta_nnz += int(rows.size)
        self.updates_since_refactor += 1
        self._charge(
            "update.eta",
            OpCost(
                flops=2.0 * rows.size,
                bytes_read=rows.size * (_WORD + _INDEX_BYTES),
                bytes_written=rows.size * (_WORD + _INDEX_BYTES),
            ),
        )


def basis_columns_csc(prep, basis: np.ndarray) -> CscMatrix:
    """The m×m basis matrix as CSC (artificial columns are unit columns).

    The sparse counterpart of :meth:`PreparedLP.basis_matrix`: columns are
    pulled from the CSC constraint matrix in O(column nnz) each, and the
    implicit artificials ``e_i`` (index ``n_total + i``) are synthesised as
    single-entry columns — the dense m×m matrix is never materialised.
    """
    m, n = prep.m, prep.n_total
    indptr = np.zeros(m + 1, dtype=np.int64)
    all_rows: list[np.ndarray] = []
    all_vals: list[np.ndarray] = []
    for pos, j in enumerate(np.asarray(basis, dtype=np.int64)):
        if j >= n:
            rows = np.array([j - n], dtype=np.int64)
            vals = np.ones(1)
        else:
            rows, vals = prep.a.getcol(int(j))
        all_rows.append(rows)
        all_vals.append(vals)
        indptr[pos + 1] = indptr[pos] + rows.size
    return CscMatrix(
        (m, m),
        indptr,
        np.concatenate(all_rows) if all_rows else np.zeros(0, dtype=np.int64),
        np.concatenate(all_vals) if all_vals else np.zeros(0),
    )

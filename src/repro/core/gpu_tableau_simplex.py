"""Full-tableau simplex on the simulated GPU — the A3 ablation design point.

The tableau method updates the *entire* m×n tableau with one rank-1 GER per
pivot.  On a GPU this is the maximally parallel formulation (m·n threads,
perfect device fill), but it does Θ(mn) work per iteration where the revised
method does Θ(m² + pricing); the A3 experiment measures where each wins.

Device layout: the tableau T is **column-major** (the per-iteration entering
column extraction is the hot read), so the pivot-row extraction is strided
and charged its transaction amplification — the classic layout trade the
paper's discussion of coalescing covers.

Runs as a :class:`~repro.engine.backend.SolverBackend` on the shared
:mod:`repro.engine` lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.core import gpu_kernels as K
from repro.engine import SolverBackend, attach_standard_solution
from repro.errors import SolverError
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import Device
from repro.gpu.reduce import NO_INDEX
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


class GpuTableauSimplex(SolverBackend):
    """Two-phase full-tableau simplex on the simulated SIMT device."""

    name = "gpu-tableau"

    def __init__(
        self,
        options: SolverOptions | None = None,
        device: Device | None = None,
        gpu_params: GpuModelParams = GTX280_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing not in ("dantzig", "bland", "hybrid"):
            raise SolverError(
                f"gpu-tableau supports dantzig/bland/hybrid pricing, "
                f"not {self.options.pricing!r}"
            )
        self._external_device = device
        self._gpu_params = gpu_params
        self._st: "_TableauState | None" = None
        self.device: Device | None = device

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        opts = self.options
        self.prep = prep = prepare(problem, opts)
        dev = self._external_device or Device(self._gpu_params)
        self.device = self.dev = dev
        dev.reset_stats()

        self._policy = policy = gpu_plan.PrecisionPolicy.from_options(opts)
        dtype = policy.compute_dtype
        self.plan = gpu_plan.LaunchPlan(dev, fusion=opts.fusion, hooks=self.hooks)
        eps = float(np.finfo(dtype).eps)
        self._tol_rc = max(opts.tol_reduced_cost, 50 * eps)
        self._tol_piv = max(opts.tol_pivot, 50 * eps)

        m, n = prep.m, prep.n_total
        basis, needs_phase1 = initial_basis(prep)
        self._n_cols = n_cols = n + (m if needs_phase1 else 0)

        # host-side build of the initial tableau, then one bulk upload
        t_host = np.zeros((m, n_cols))
        t_host[:, :n] = prep.a.to_dense() if prep.is_sparse else np.asarray(prep.a)
        if needs_phase1:
            t_host[:, n:] = np.eye(m)

        self._st = st = _TableauState(
            dev, dtype, t_host, prep, n_cols, plan=self.plan
        )
        st.init_basis(basis, enterable_limit=n)
        self.stats = IterationStats()
        self.hooks.arm(
            clock=lambda: dev.clock,
            sections=lambda: dev.stats.sections,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "dtype": dtype.name,
                "device": dev.params.name,
            },
        )
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = max(PHASE1_TOL, 50 * eps)
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        st = self._st
        n = self.prep.n_total
        c_full = np.zeros(self._n_cols)
        if phase == 1:
            c_full[n:] = 1.0
        else:
            c_full[:n] = self.prep.c
        st.load_costs(c_full, st.basis)
        return self._run_phase(
            st, c_full, self.stats, self._tol_rc, self._tol_piv, phase=phase
        )

    def phase1_objective(self) -> float:
        return blas.dot(self._st.c_b, self._st.beta)

    def cleanup(self) -> None:
        if self._st is not None:
            self._st.free()
            self._st = None

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        st: "_TableauState",
        c_full: np.ndarray,
        stats: IterationStats,
        tol_rc: float,
        tol_piv: float,
        phase: int = 2,
    ) -> tuple[SolveStatus, int]:
        opts = self.options
        dev = st.dev
        tr = self.hooks if self.hooks.enabled else None
        m, n_cols = st.tableau.shape
        cap = opts.iteration_cap(m, n_cols)
        use_bland = opts.pricing == "bland"
        stalled = 0
        z = blas.dot(st.c_b, st.beta)
        iters = 0

        def rule_name() -> str:
            if opts.pricing == "hybrid":
                return "hybrid:bland" if use_bland else "hybrid:dantzig"
            return opts.pricing

        while iters < cap:
            iters += 1

            with dev.timed_section("pricing"), self.plan.section("pricing") as sec:
                K.masked_for_min(dev, st.d, st.mask, st.work)
                if use_bland:
                    q = sec.first_index_below(st.work, -tol_rc)
                    optimal = q == NO_INDEX
                    d_q = st.work.scalar_to_host(q) if not optimal else 0.0
                else:
                    q, d_q = sec.argmin(st.work)
                    optimal = d_q >= -tol_rc
            if optimal:
                if tr is not None:
                    tr.record(phase=phase, iteration=iters, event="optimal",
                              pricing_rule=rule_name(), objective=float(z))
                return SolveStatus.OPTIMAL, iters

            with dev.timed_section("column"), self.plan.section("column"):
                K.extract_column(dev, st.tableau, q, st.alpha, column_major=True)

            with dev.timed_section("ratio"):
                with self.plan.section("ratio.map") as sec:
                    K.ratio_kernel(dev, st.beta, st.alpha, st.ratios, tol_piv)
                    p, theta = sec.argmin(st.ratios)
                unbounded = not np.isfinite(theta)
                if not unbounded:
                    cut = theta * (1.0 + 1e-6) + 1e-30
                    with self.plan.section("ratio.tie") as sec:
                        K.tie_break_key_kernel(
                            dev, st.ratios, cut, st.basis_keys, st.tie_keys
                        )
                        p2, key = sec.argmin(st.tie_keys)
                    if np.isfinite(key):
                        p = p2
                    pivot = st.alpha.scalar_to_host(p)
            if unbounded:
                if tr is not None:
                    tr.record(phase=phase, iteration=iters, event="unbounded",
                              entering=int(q), pricing_rule=rule_name(),
                              objective=float(z))
                return SolveStatus.UNBOUNDED, iters
            degenerate = theta <= opts.tol_zero
            if degenerate:
                stats.degenerate_steps += 1
            if tr is not None:
                # Uncharged diagnostic peeks at the functional backing store.
                trace_leaving = int(st.basis[p])
                trace_ties = int(np.count_nonzero(st.ratios.data <= cut))

            with dev.timed_section("pivot"):
                st.pivot(p, q, pivot, theta, d_q, float(c_full[q]))
            z += theta * d_q
            if tr is not None:
                tr.record(
                    phase=phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(p),
                    leaving_var=trace_leaving,
                    pivot=float(pivot), theta=float(theta),
                    ratio_ties=trace_ties, pricing_rule=rule_name(),
                    objective=float(z), degenerate=degenerate,
                )

            improved = theta * (-d_q) > 1e-12 * (1.0 + abs(z))
            if opts.pricing == "hybrid":
                if improved:
                    stalled = 0
                    use_bland = False
                else:
                    stalled += 1
                    if stalled >= opts.stall_window and not use_bland:
                        use_bland = True
                        stats.bland_activations += 1
                        stalled = 0

        return SolveStatus.ITERATION_LIMIT, iters

    def drive_out_artificials(self) -> None:
        """Pivot zero-valued artificial basics onto real columns."""
        st = self._st
        dev = st.dev
        n = st.enterable_limit
        for p in np.nonzero(st.basis >= n)[0]:
            p = int(p)
            K.extract_row(dev, st.tableau, p, st.row_buf, row_major=False)
            row = st.row_buf.copy_to_host().astype(np.float64)[:n]
            eligible = (~st.in_basis[:n]) & (np.abs(row) > 1e-5)
            candidates = np.nonzero(eligible)[0]
            if candidates.size == 0:
                continue
            q = int(candidates[np.argmax(np.abs(row[candidates]))])
            K.extract_column(dev, st.tableau, q, st.alpha, column_major=True)
            pivot = st.alpha.scalar_to_host(p)
            beta_p = st.beta.scalar_to_host(p)
            theta = beta_p / pivot
            d_q = st.d.scalar_to_host(q)
            st.pivot(p, q, pivot, theta, d_q, 0.0)

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        dev = self.dev
        breakdown = dict(dev.stats.sections)
        breakdown["transfer"] = dev.stats.transfer_seconds
        return TimingStats(
            modeled_seconds=dev.clock,
            wall_seconds=wall_seconds,
            transfer_seconds=dev.stats.transfer_seconds,
            kernel_breakdown=breakdown,
        )

    def standard_extras(self, result: SolveResult) -> None:
        dev = self.dev
        result.extra["device"] = dev.params.name
        result.extra["kernel_launches"] = dev.stats.kernel_launches
        result.extra["kernel_bytes"] = sum(
            rec.bytes for rec in dev.stats.by_kernel.values()
        )
        result.extra["by_kernel"] = dev.stats.kernel_breakdown()
        result.extra["peak_device_bytes"] = dev.stats.peak_bytes_in_use
        if self.options.fusion:
            result.extra["fused_launches"] = self.plan.fused_launches
            result.extra["fused_ops"] = self.plan.fused_ops
            result.extra["fusion_saved_seconds"] = self.plan.saved_seconds

    def extract(self, result: SolveResult) -> None:
        st = self._st
        if self._policy.refine:
            beta_host = self._refined_beta(result)
        else:
            beta_host = st.beta.copy_to_host().astype(np.float64)
        attach_standard_solution(result, self.prep, st.basis, beta_host)

    def _refined_beta(self, result: SolveResult) -> np.ndarray:
        """fp64 iterative refinement of the fp32 basic solution.

        The tableau method keeps no factorisation of B on the device, so
        the correction solves run on the host against the fp64 basis
        matrix (host linear algebra is uncharged, matching the revised
        method's refactorisation convention); the fp32 solution download
        is the only device traffic.
        """
        st = self._st
        m = self.prep.m
        basis_matrix = np.asarray(
            self.prep.basis_matrix(st.basis), dtype=np.float64
        )
        b64 = np.asarray(self.prep.b, dtype=np.float64)
        scale = 1.0 + (float(np.max(np.abs(b64))) if m else 0.0)
        x64 = st.beta.copy_to_host().astype(np.float64)
        steps = 0
        residual = (
            float(np.max(np.abs(b64 - basis_matrix @ x64))) if m else 0.0
        )
        while steps < 3 and residual > 1e-12 * scale:
            x64 += np.linalg.solve(basis_matrix, b64 - basis_matrix @ x64)
            steps += 1
            residual = float(np.max(np.abs(b64 - basis_matrix @ x64)))
        result.extra["refinement_steps"] = steps
        result.extra["residual_after_refinement"] = residual
        return x64

    def finalize_timing(self, result: SolveResult) -> None:
        # the solution download in extract() advanced the clock; the
        # reported machine time must include it
        dev = self.dev
        result.timing.modeled_seconds = dev.clock
        result.timing.transfer_seconds = dev.stats.transfer_seconds
        result.timing.kernel_breakdown["transfer"] = dev.stats.transfer_seconds


class _TableauState:
    """Device tableau + vectors, and the host basis bookkeeping."""

    def __init__(self, dev: Device, dtype: np.dtype, t_host: np.ndarray,
                 prep: PreparedLP, n_cols: int, *,
                 plan: gpu_plan.LaunchPlan):
        self.dev = dev
        self.dtype = dtype
        self.prep = prep
        self.plan = plan
        m = prep.m
        try:
            with dev.timed_section("transfer"):
                self.tableau = dev.to_device(t_host, dtype)
                self.beta = dev.to_device(prep.b, dtype)
                self.c = dev.to_device(np.zeros(n_cols), dtype)
                self.c_b = dev.to_device(np.zeros(m), dtype)
                self.mask = dev.to_device(np.ones(n_cols), dtype)
            self.d = dev.zeros(n_cols, dtype)
            self.work = dev.zeros(n_cols, dtype)
            self.alpha = dev.zeros(m, dtype)
            self.ratios = dev.zeros(m, dtype)
            self.tie_keys = dev.zeros(m, dtype)
            self.basis_keys = dev.zeros(m, dtype)
        except Exception:
            self.free()
            raise
        self.row_buf = dev.zeros(n_cols, dtype)
        self.row_norm = dev.zeros(n_cols, dtype)
        self.basis = np.zeros(m, dtype=np.int64)
        self.in_basis = np.zeros(n_cols, dtype=bool)
        self.enterable_limit = n_cols  # set by init_basis

    def init_basis(self, basis: np.ndarray, enterable_limit: int) -> None:
        self.basis = basis.astype(np.int64).copy()
        self.enterable_limit = enterable_limit
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        mask_host = np.ones(self.mask.size)
        mask_host[self.in_basis] = 0.0
        mask_host[enterable_limit:] = 0.0  # artificials never (re-)enter
        with self.dev.timed_section("transfer"):
            self.mask.copy_from_host(mask_host.astype(self.dtype))
            self.basis_keys.copy_from_host(self.basis.astype(self.dtype))

    def load_costs(self, c_full: np.ndarray, basis: np.ndarray) -> None:
        """Upload phase costs and recompute d = c − c_Bᵀ T on the device."""
        with self.dev.timed_section("transfer"):
            self.c.copy_from_host(c_full.astype(self.dtype))
            self.c_b.copy_from_host(c_full[basis].astype(self.dtype))
        with self.dev.timed_section("pricing"), self.plan.section("pricing.load"):
            blas.copy(self.c, self.d)
            blas.gemv(self.tableau, self.c_b, self.d, alpha=-1.0, beta=1.0, trans=True)

    def pivot(self, p: int, q: int, pivot: float, theta: float,
              d_q: float, c_q: float) -> None:
        """Gauss–Jordan elimination around (p, q), all on-device."""
        dev = self.dev
        with dev.timed_section("pivot"):
            with self.plan.section("pivot"):
                # normalised pivot row
                K.extract_row(dev, self.tableau, p, self.row_buf, row_major=False)
                K.scale_row_kernel(dev, self.row_buf, 1.0 / pivot, self.row_norm)
                # tableau rank-1 elimination, then rewrite row p
                K.ger_column_major(dev, self.alpha, self.row_norm, self.tableau, alpha=-1.0)
                K.write_row_kernel(dev, self.tableau, p, self.row_norm)
                # rhs and reduced costs
                K.update_beta_kernel(dev, self.beta, self.alpha, theta, p)
                blas.axpy(-d_q, self.row_norm, self.d)
            # host scalar write — transfers sit outside the capture
            self.d.set_scalar(q, 0.0)
        # host metadata
        leaving = int(self.basis[p])
        self.in_basis[leaving] = False
        self.in_basis[q] = True
        self.basis[p] = q
        self.mask.set_scalar(q, 0.0)
        if leaving < self.enterable_limit:
            self.mask.set_scalar(leaving, 1.0)
        self.c_b.set_scalar(p, c_q)
        self.basis_keys.set_scalar(p, float(q))

    def free(self) -> None:
        """Release device allocations; tolerates partial construction."""
        for name in (
            "tableau", "beta", "c", "c_b", "mask", "d", "work", "alpha",
            "ratios", "tie_keys", "basis_keys", "row_buf", "row_norm",
        ):
            arr = getattr(self, name, None)
            if arr is not None and not arr.is_freed:
                arr.free()

"""The paper's solver: revised simplex on the (simulated) GPU.

Data placement follows the IPDPS 2009 design: the constraint matrix A
(column-major), the basis inverse B⁻¹ (row-major, dense), β, the pricing
vector and all scratch buffers live in device global memory for the whole
solve; the host only sees per-iteration scalars (entering/leaving indices,
step length, pivot) and drives control flow.

Per-iteration kernel schedule (names match the breakdown figure F3):

======== =========================================================
section  kernels
======== =========================================================
pricing  GEMVᵀ (π = B⁻ᵀc_B), GEMVᵀ/SpMVᵀ (d = c − Aᵀπ),
         mask map, arg-min tree reduction
ftran    column extract (or e_i synthesis), GEMV (α = B⁻¹a_q)
ratio    ratio map kernel, arg-min tree reduction
update   β update kernel, η kernel, row extract, GER rank-1 B⁻¹ update,
         scalar HtoD writes (mask bits, c_B entry)
======== =========================================================

Phase 1 uses implicit artificial columns (e_i synthesised on demand);
phase 2 reuses the phase-1 basis inverse, exactly as in the paper.  The
explicit-inverse scheme does not refactorise by default (``refactor_period``
applies if set; the rebuild happens on the host with PCIe-charged round
trips, as 2009-era codes did).

Runs as a :class:`~repro.engine.backend.SolverBackend` on the shared
:mod:`repro.engine` lifecycle (which also guarantees the device state is
freed on every exit path).
"""

from __future__ import annotations

import numpy as np

from repro.core import gpu_kernels as K
from repro.engine import SolverBackend, attach_standard_solution, rule_label
from repro.errors import SolverError
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.gpu.reduce import NO_INDEX
from repro.gpu.sparse_kernels import DeviceCscMatrix, spmv_csc_t
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus


class _GpuPricing:
    """Host-side pricing state machine driving the device reductions.

    Implements dantzig / bland / hybrid over the masked reduced-cost buffer
    (``devex``/``steepest-edge`` need tableau columns and are rejected at
    construction of the solver).
    """

    def __init__(self, mode: str, stall_window: int):
        self.mode = mode
        self.stall_window = stall_window
        self.using_bland = mode == "bland"
        self.stalled = 0
        self.improved_streak = 0
        self.activations = 0

    def select(
        self,
        sec: "gpu_plan._PlanSection",
        d: DeviceArray,
        mask: DeviceArray,
        work: DeviceArray,
        tol: float,
    ) -> tuple[int, float] | None:
        K.masked_for_min(d.device, d, mask, work)
        if self.using_bland:
            q = sec.first_index_below(work, -tol)
            if q == NO_INDEX:
                return None
            return q, work.scalar_to_host(q)
        q, dq = sec.argmin(work)
        if dq >= -tol:
            return None
        return q, dq

    def notify(self, improved: bool) -> None:
        if self.mode != "hybrid":
            return
        if improved:
            self.stalled = 0
            if self.using_bland:
                self.improved_streak += 1
                if self.improved_streak >= 5:
                    self.using_bland = False
                    self.improved_streak = 0
        else:
            self.stalled += 1
            self.improved_streak = 0
            if not self.using_bland and self.stalled >= self.stall_window:
                self.using_bland = True
                self.activations += 1
                self.stalled = 0


class GpuRevisedSimplex(SolverBackend):
    """Two-phase revised simplex on the simulated SIMT device.

    ``solve(problem, initial_basis_hint=...)`` warm-starts from a previous
    basis: the hint's B⁻¹ is factorised on the host and uploaded (one PCIe
    round trip — exactly how a CUDA port would warm-start).  A singular or
    primal-infeasible hint falls back to the cold crash basis.
    """

    name = "gpu-revised"
    accepts_warm_start = True

    def __init__(
        self,
        options: SolverOptions | None = None,
        device: Device | None = None,
        gpu_params: GpuModelParams = GTX280_PARAMS,
        fill_stats_every: int = 0,
    ):
        """``fill_stats_every > 0`` samples the fraction of non-negligible
        entries of the device-resident B⁻¹ every that-many pivots into
        ``result.extra["binv_fill"]`` — free instrumentation (reads the
        functional backing store; no modeled time is charged), used by the
        F8 fill-in experiment."""
        self.options = options or SolverOptions()
        if self.options.pricing in ("devex", "steepest-edge"):
            raise SolverError(
                f"pricing {self.options.pricing!r} needs tableau columns; "
                "use the tableau solvers"
            )
        self._external_device = device
        self._gpu_params = gpu_params
        self._fill_every = int(fill_stats_every)
        self._st: "_State | None" = None
        #: The device of the last solve (statistics inspection).
        self.device: Device | None = device

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        opts = self.options
        self.prep = prep = prepare(problem, opts)
        dev = self._external_device or Device(self._gpu_params)
        self.device = self.dev = dev
        dev.reset_stats()

        self._policy = policy = gpu_plan.PrecisionPolicy.from_options(opts)
        dtype = policy.compute_dtype
        self.plan = gpu_plan.LaunchPlan(dev, fusion=opts.fusion, hooks=self.hooks)
        eps = float(np.finfo(dtype).eps)
        self._tol_rc = max(opts.tol_reduced_cost, 50 * eps)
        self._tol_piv = max(opts.tol_pivot, 50 * eps)

        m, n = prep.m, prep.n_total
        self._st = st = _State(prep, dev, dtype)
        self.stats = stats = IterationStats()
        basis, needs_phase1 = initial_basis(prep)
        st.init_basis(basis)
        self.hooks.arm(
            clock=lambda: dev.clock,
            sections=lambda: dev.stats.sections,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "dtype": dtype.name,
                "device": dev.params.name,
            },
        )
        self._eta_updates = 0
        self._global_iter = 0
        self._fill_curve: list[tuple[int, float]] = []

        if warm_hint is not None:
            from repro.simplex.common import validate_warm_basis

            warm = validate_warm_basis(prep, warm_hint)
            try:
                binv = np.linalg.solve(prep.basis_matrix(warm), np.eye(m))
                warm_beta = binv @ prep.b
            except np.linalg.LinAlgError:
                warm_beta = None
            if warm_beta is not None and warm_beta.min() >= -1e-7:
                st.init_basis(warm)
                with dev.timed_section("transfer"):
                    st.binv.copy_from_host(binv.astype(dtype))
                    st.beta.copy_from_host(
                        np.clip(warm_beta, 0.0, None).astype(dtype)
                    )
                needs_phase1 = bool(np.any(warm >= n))
                stats.refactorizations += 1

        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = max(PHASE1_TOL, 50 * eps)
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        return self._run_phase(
            self._st, c_full, self.stats, self._tol_rc, self._tol_piv,
            phase=phase,
        )

    def phase1_objective(self) -> float:
        return blas.dot(self._st.c_b, self._st.beta)

    def cleanup(self) -> None:
        if self._st is not None:
            self._st.free()
            self._st = None

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        st: "_State",
        c_full: np.ndarray,
        stats: IterationStats,
        tol_rc: float,
        tol_piv: float,
        phase: int,
    ) -> tuple[SolveStatus, int]:
        opts = self.options
        dev = st.dev
        prep = st.prep
        m, n = prep.m, prep.n_total
        cap = opts.iteration_cap(m, n)
        pricing = _GpuPricing(opts.pricing, opts.stall_window)

        st.load_phase_costs(c_full)
        z = blas.dot(st.c_b, st.beta)
        iters = 0
        tr = self.hooks if self.hooks.enabled else None

        while iters < cap:
            iters += 1

            # -- pricing: π = B⁻ᵀ c_B;  d = c − Aᵀπ;  masked arg-min
            with dev.timed_section("pricing"), self.plan.section("pricing") as sec:
                blas.gemv(st.binv, st.c_b, st.pi, trans=True)
                blas.copy(st.c_real, st.d)
                if st.a_sparse is not None:
                    spmv_csc_t(st.a_sparse, st.pi, st.tmp_n)
                    blas.axpy(-1.0, st.tmp_n, st.d)
                else:
                    blas.gemv(st.a_dense, st.pi, st.d, alpha=-1.0, beta=1.0, trans=True)
                choice = pricing.select(sec, st.d, st.mask, st.tmp_n, tol_rc)
            if choice is None:
                stats.bland_activations += pricing.activations
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="optimal",
                        pricing_rule=rule_label(pricing),
                        eta_count=self._eta_updates, objective=float(z),
                    )
                return SolveStatus.OPTIMAL, iters
            q, d_q = choice

            # -- ftran: α = B⁻¹ a_q
            with dev.timed_section("ftran"), self.plan.section("ftran"):
                st.load_column(q)
                blas.gemv(st.binv, st.a_q, st.alpha)

            # -- ratio test (Bland-compatible: ties break to the lowest
            #    basic-variable index via a second keyed reduction).  Two
            #    plan sections: the θ comparison between the arg-mins is
            #    host control flow, which a capture cannot span.
            with dev.timed_section("ratio"):
                with self.plan.section("ratio.map") as sec:
                    K.ratio_kernel(dev, st.beta, st.alpha, st.ratios, tol_piv)
                    p, theta = sec.argmin(st.ratios)
                if not np.isfinite(theta):
                    stats.bland_activations += pricing.activations
                    if tr is not None:
                        tr.record(
                            phase=phase, iteration=iters, event="unbounded",
                            entering=int(q), pricing_rule=rule_label(pricing),
                            eta_count=self._eta_updates, objective=float(z),
                        )
                    return SolveStatus.UNBOUNDED, iters
                cut = theta * (1.0 + 1e-6) + 1e-30
                with self.plan.section("ratio.tie") as sec:
                    K.tie_break_key_kernel(dev, st.ratios, cut, st.basis_keys, st.tmp_m)
                    p2, key = sec.argmin(st.tmp_m)
                if np.isfinite(key):
                    p = p2
                pivot = st.alpha.scalar_to_host(p)
            if theta <= opts.tol_zero:
                stats.degenerate_steps += 1
            if tr is not None:
                # Uncharged diagnostic peeks (host reads of the functional
                # backing store): leaving variable before the basis swap,
                # ratio-test tie count below the Harris-style cut.
                trace_leaving = int(st.basis[p])
                trace_ties = int(np.count_nonzero(st.ratios.data <= cut))

            # -- update: β, B⁻¹, basis metadata, objective.  The metadata
            #    writes are host scalar transfers, so they sit outside the
            #    plan section.
            with dev.timed_section("update"):
                with self.plan.section("update"):
                    K.update_beta_kernel(dev, st.beta, st.alpha, theta, p)
                    K.eta_kernel(dev, st.alpha, p, pivot, st.eta)
                    K.extract_row(dev, st.binv, p, st.row_p)
                    blas.ger(st.eta, st.row_p, st.binv)
                st.pivot_metadata(p, q, float(c_full[q]))
            z += theta * d_q
            self._eta_updates += 1
            if tr is not None:
                tr.record(
                    phase=phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(p),
                    leaving_var=trace_leaving,
                    pivot=float(pivot), theta=float(theta),
                    ratio_ties=trace_ties, pricing_rule=rule_label(pricing),
                    eta_count=self._eta_updates, objective=float(z),
                    degenerate=theta <= opts.tol_zero,
                )
            self._global_iter += 1
            if self._fill_every and self._global_iter % self._fill_every == 0:
                # diagnostic peek at the functional backing store (uncharged)
                frac = float(np.mean(np.abs(st.binv.data) > 1e-7))
                self._fill_curve.append((self._global_iter, frac))
            pricing.notify(theta * (-d_q) > 1e-12 * (1.0 + abs(z)))

            if (
                opts.refactor_period
                and iters % opts.refactor_period == 0
            ):
                with self.hooks.span("engine.refactor"):
                    st.refactor_host()
                stats.refactorizations += 1
                self._eta_updates = 0

        stats.bland_activations += pricing.activations
        return SolveStatus.ITERATION_LIMIT, iters

    # ------------------------------------------------------------------

    def drive_out_artificials(self) -> None:
        """Replace zero-valued artificial basics by real columns (host-driven,
        device-computed): row p of B⁻¹ is read directly (it *is* e_pᵀB⁻¹),
        the transformed row over real columns comes from one GEMVᵀ/SpMVᵀ."""
        st = self._st
        tol_piv = self._tol_piv
        dev = st.dev
        prep = st.prep
        n = prep.n_total
        for p in np.nonzero(st.basis >= n)[0]:
            p = int(p)
            K.extract_row(dev, st.binv, p, st.row_p)
            if st.a_sparse is not None:
                spmv_csc_t(st.a_sparse, st.row_p, st.tmp_n)
            else:
                blas.gemv(st.a_dense, st.row_p, st.tmp_n, trans=True)
            alpha_row = st.tmp_n.copy_to_host().astype(np.float64)
            eligible = (~st.in_basis[:n]) & (np.abs(alpha_row) > 1e-5)
            candidates = np.nonzero(eligible)[0]
            if candidates.size == 0:
                continue  # redundant row; artificial stays basic at zero
            j = int(candidates[np.argmax(np.abs(alpha_row[candidates]))])
            st.load_column(j)
            blas.gemv(st.binv, st.a_q, st.alpha)
            pivot = st.alpha.scalar_to_host(p)
            if abs(pivot) <= tol_piv:
                continue
            beta_p = st.beta.scalar_to_host(p)
            theta = beta_p / pivot
            K.update_beta_kernel(dev, st.beta, st.alpha, theta, p)
            K.eta_kernel(dev, st.alpha, p, pivot, st.eta)
            K.extract_row(dev, st.binv, p, st.row_p)
            blas.ger(st.eta, st.row_p, st.binv)
            st.pivot_metadata(p, j, 0.0)

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        dev = self.dev
        breakdown = dict(dev.stats.sections)
        breakdown["transfer"] = dev.stats.transfer_seconds
        return TimingStats(
            modeled_seconds=dev.clock,
            wall_seconds=wall_seconds,
            transfer_seconds=dev.stats.transfer_seconds,
            kernel_breakdown=breakdown,
        )

    def standard_extras(self, result: SolveResult) -> None:
        dev = self.dev
        if self._fill_every:
            result.extra["binv_fill"] = list(getattr(self, "_fill_curve", []))
        result.extra["device"] = dev.params.name
        result.extra["kernel_launches"] = dev.stats.kernel_launches
        result.extra["kernel_bytes"] = sum(
            rec.bytes for rec in dev.stats.by_kernel.values()
        )
        result.extra["by_kernel"] = dev.stats.kernel_breakdown()
        result.extra["peak_device_bytes"] = dev.stats.peak_bytes_in_use
        if self.options.fusion:
            result.extra["fused_launches"] = self.plan.fused_launches
            result.extra["fused_ops"] = self.plan.fused_ops
            result.extra["fusion_saved_seconds"] = self.plan.saved_seconds

    def extract(self, result: SolveResult) -> None:
        st = self._st
        if self._policy.refine:
            beta_host = self._refined_beta(result)
        else:
            beta_host = st.beta.copy_to_host().astype(np.float64)
        attach_standard_solution(result, self.prep, st.basis, beta_host)

    def _refined_beta(self, result: SolveResult) -> np.ndarray:
        """Mixed-precision extraction: fp64 residuals on the host drive
        fp32 correction solves on the device (dx = B⁻¹r via the resident
        inverse), with the solution accumulated in fp64 — the classic
        iterative-refinement scheme.  Every round trip is transfer-costed
        and the fp32↔fp64 conversions run as :func:`repro.gpu.blas.cast`
        kernels."""
        st = self._st
        dev = self.dev
        m = self.prep.m
        basis_matrix = np.asarray(
            self.prep.basis_matrix(st.basis), dtype=np.float64
        )
        b64 = np.asarray(self.prep.b, dtype=np.float64)
        scale = 1.0 + float(np.max(np.abs(b64))) if m else 1.0
        x64 = st.beta.copy_to_host().astype(np.float64)
        steps = 0
        residual = float(np.max(np.abs(b64 - basis_matrix @ x64))) if m else 0.0
        r64 = dev.alloc(m, np.float64)
        r32 = dev.alloc(m, np.float32)
        dx32 = dev.alloc(m, np.float32)
        try:
            while steps < 3 and residual > 1e-12 * scale:
                with dev.timed_section("transfer"):
                    r64.copy_from_host(b64 - basis_matrix @ x64)
                with dev.timed_section("refine"):
                    blas.cast(r64, r32)
                    blas.gemv(st.binv, r32, dx32)
                x64 += dx32.copy_to_host().astype(np.float64)
                steps += 1
                residual = float(np.max(np.abs(b64 - basis_matrix @ x64)))
        finally:
            for buf in (r64, r32, dx32):
                buf.free()
        result.extra["refinement_steps"] = steps
        result.extra["residual_after_refinement"] = residual
        return x64

    def finalize_timing(self, result: SolveResult) -> None:
        # the solution download in extract() advanced the clock; the
        # reported machine time must include it
        dev = self.dev
        result.timing.modeled_seconds = dev.clock
        result.timing.transfer_seconds = dev.stats.transfer_seconds
        result.timing.kernel_breakdown["transfer"] = dev.stats.transfer_seconds


class _State:
    """Device-resident solver state plus the host-side basis bookkeeping."""

    def __init__(self, prep: PreparedLP, dev: Device, dtype: np.dtype):
        self.prep = prep
        self.dev = dev
        self.dtype = dtype
        m, n = prep.m, prep.n_total

        self.a_sparse: DeviceCscMatrix | None = None
        self.a_dense: DeviceArray | None = None
        try:
            with dev.timed_section("transfer"):
                if prep.is_sparse:
                    self.a_sparse = DeviceCscMatrix(dev, prep.a, dtype)
                else:
                    self.a_dense = dev.to_device(np.asarray(prep.a), dtype)
                self.b = dev.to_device(prep.b, dtype)
                self.binv = dev.to_device(np.eye(m), dtype)
                self.beta = dev.to_device(prep.b, dtype)
                self.c_real = dev.to_device(np.zeros(n), dtype)
                self.c_b = dev.to_device(np.zeros(m), dtype)
                self.mask = dev.to_device(np.ones(n), dtype)

            self.pi = dev.zeros(m, dtype)
            self.d = dev.zeros(n, dtype)
            self.tmp_n = dev.zeros(n, dtype)
            self.tmp_m = dev.zeros(m, dtype)
            self.basis_keys = dev.zeros(m, dtype)
            self.a_q = dev.zeros(m, dtype)
            self.alpha = dev.zeros(m, dtype)
            self.ratios = dev.zeros(m, dtype)
            self.eta = dev.zeros(m, dtype)
            self.row_p = dev.zeros(m, dtype)
        except Exception:
            # a failed allocation (device OOM) must not leak what was
            # already placed on the card
            self.free()
            raise

        self.basis = np.zeros(m, dtype=np.int64)
        self.in_basis = np.zeros(n + m, dtype=bool)
        self._c_full = np.zeros(n + m)

    # -- basis bookkeeping ------------------------------------------------

    def init_basis(self, basis: np.ndarray) -> None:
        self.basis = basis.astype(np.int64).copy()
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        mask_host = np.where(self.in_basis[: self.prep.n_total], 0.0, 1.0)
        with self.dev.timed_section("transfer"):
            self.mask.copy_from_host(mask_host.astype(self.dtype))
            self.basis_keys.copy_from_host(self.basis.astype(self.dtype))

    def load_phase_costs(self, c_full: np.ndarray) -> None:
        """Upload the phase cost data: c over real columns and c_B."""
        self._c_full = c_full
        n = self.prep.n_total
        with self.dev.timed_section("transfer"):
            self.c_real.copy_from_host(c_full[:n].astype(self.dtype))
            self.c_b.copy_from_host(c_full[self.basis].astype(self.dtype))

    def load_column(self, j: int) -> None:
        """a_q := column j (real column or synthesised artificial e_i)."""
        n = self.prep.n_total
        if j >= n:
            K.unit_vector(self.dev, self.a_q, j - n)
        elif self.a_sparse is not None:
            self.a_sparse.getcol_device(j, self.a_q)
        else:
            K.extract_column(self.dev, self.a_dense, j, self.a_q)

    def pivot_metadata(self, p: int, q: int, c_q: float) -> None:
        """Host-side basis swap + the device metadata writes it entails."""
        leaving = int(self.basis[p])
        n = self.prep.n_total
        self.in_basis[leaving] = False
        self.in_basis[q] = True
        self.basis[p] = q
        if q < n:
            self.mask.set_scalar(q, 0.0)
        if leaving < n:
            self.mask.set_scalar(leaving, 1.0)
        self.c_b.set_scalar(p, c_q)
        self.basis_keys.set_scalar(p, float(q))

    def refactor_host(self) -> None:
        """Rebuild B⁻¹ exactly on the host (PCIe round trip), refresh β."""
        b_matrix = self.prep.basis_matrix(self.basis)
        binv = np.linalg.solve(b_matrix, np.eye(self.prep.m))
        with self.dev.timed_section("transfer"):
            self.binv.copy_from_host(binv.astype(self.dtype))
        blas.gemv(self.binv, self.b, self.beta)
        K.clamp_nonneg_kernel(self.dev, self.beta)

    def free(self) -> None:
        """Release every device allocation; tolerates partially-constructed
        state (OOM during ``__init__``)."""
        for name in (
            "b", "binv", "beta", "c_real", "c_b", "mask",
            "pi", "d", "tmp_n", "tmp_m", "basis_keys",
            "a_q", "alpha", "ratios", "eta", "row_p",
        ):
            arr = getattr(self, name, None)
            if arr is not None and not arr.is_freed:
                arr.free()
        if self.a_dense is not None and not self.a_dense.is_freed:
            self.a_dense.free()
        if self.a_sparse is not None and not self.a_sparse.data.is_freed:
            self.a_sparse.free()

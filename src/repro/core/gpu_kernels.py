"""Solver-specific device kernels of the GPU simplex implementations.

Everything here is a thin kernel over :class:`~repro.gpu.device.Device` with
an explicit cost, mirroring the custom (non-cuBLAS) kernels a CUDA port
writes around the BLAS calls: the ratio-test map, eta-column construction,
the β update, masked pricing preparation and matrix row/column extraction.

Layout convention: dense device matrices that are read column-wise (the
constraint matrix A, the tableau T) are stored **column-major** on the
device, exactly as the paper's implementation does, so column extraction is
a coalesced copy.  The basis inverse B⁻¹ is stored **row-major** because the
eta update reads row p (coalesced) and GEMV's warp-per-row mapping wants
contiguous rows.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DeviceArrayError
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.perfmodel.ops import OpCost

#: Value standing in for +inf in the ratio vector (a float32-safe infinity).
#: Kernels must materialise it **in the vector's own dtype**
#: (``arr.dtype.type(RATIO_INF)``): a bare ``np.inf`` is a Python float, and
#: ``np.where(cond, fp32_arr, np.inf)`` silently promotes the whole result to
#: fp64 mid-kernel under pre-NEP50 promotion rules.
RATIO_INF = np.inf


def extract_column(
    dev: Device, a: DeviceArray, j: int, out: DeviceArray, *, column_major: bool = True
) -> None:
    """out := A[:, j] for a dense device matrix.

    Coalesced when the matrix is stored column-major (the solver's layout
    for A and T); a strided, transaction-amplified read otherwise.
    """
    m, n = a.shape
    if not 0 <= j < n:
        raise DeviceArrayError(f"column {j} out of range for {a.shape}")
    if out.shape != (m,):
        raise DeviceArrayError("output vector has wrong length")
    w = out.itemsize

    def body() -> None:
        out.data[:] = a.data[:, j]

    dev.launch(
        "kernel.extract_col",
        body,
        OpCost(
            bytes_read=m * w,
            bytes_written=m * w,
            threads=max(1, m),
            coalesced_fraction=1.0 if column_major else 1.0 / max(1, 64 // w),
        ),
        dtype=a.dtype,
        fusable=True,
        # the matrix is *partially* read (one column), so it must not be
        # declared a fusion-resident operand — only the output vector is
        writes=(out,),
    )


def extract_row(
    dev: Device, a: DeviceArray, i: int, out: DeviceArray, *, row_major: bool = True
) -> None:
    """out := A[i, :] for a dense device matrix.

    Coalesced for the row-major layout (B⁻¹); strided for column-major
    matrices (the tableau), where the transaction amplification is charged.
    """
    m, n = a.shape
    if not 0 <= i < m:
        raise DeviceArrayError(f"row {i} out of range for {a.shape}")
    if out.shape != (n,):
        raise DeviceArrayError("output vector has wrong length")
    w = out.itemsize

    def body() -> None:
        out.data[:] = a.data[i, :]

    dev.launch(
        "kernel.extract_row",
        body,
        OpCost(
            bytes_read=n * w,
            bytes_written=n * w,
            threads=max(1, n),
            coalesced_fraction=1.0 if row_major else 1.0 / max(1, 64 // w),
        ),
        dtype=a.dtype,
        fusable=True,
        # partial read of the matrix (one row): not a resident operand
        writes=(out,),
    )


def unit_vector(dev: Device, out: DeviceArray, i: int) -> None:
    """out := e_i (artificial-column synthesis: fill + one scatter)."""
    if not 0 <= i < out.size:
        raise DeviceArrayError(f"index {i} out of range for e_i of size {out.size}")
    w = out.itemsize

    def body() -> None:
        out.data.fill(0)
        out.data[i] = 1

    dev.launch(
        "kernel.unit_vector",
        body,
        OpCost(bytes_written=out.nbytes + w, threads=max(1, out.size)),
        dtype=out.dtype,
        fusable=True,
        writes=(out,),
    )


def ratio_kernel(
    dev: Device,
    beta: DeviceArray,
    alpha: DeviceArray,
    ratios: DeviceArray,
    tol_pivot: float,
) -> None:
    """ratios[i] := β_i/α_i where α_i > tol, +inf elsewhere.

    The per-row map of the ratio test; the branch makes warps mildly
    divergent, which the cost carries.
    """
    m = beta.size
    if alpha.size != m or ratios.size != m:
        raise DeviceArrayError("ratio kernel operand size mismatch")
    w = beta.itemsize
    tol = beta.dtype.type(tol_pivot)
    inf = ratios.dtype.type(RATIO_INF)

    def body() -> None:
        a = alpha.data
        positive = a > tol
        with np.errstate(divide="ignore", invalid="ignore"):
            r = np.where(positive, beta.data / np.where(positive, a, 1), inf)
        # feasible β cannot produce negative ratios except via round-off
        ratios.data[:] = np.where(r < 0, 0, r).astype(ratios.dtype)

    dev.launch(
        "kernel.ratio",
        body,
        OpCost(
            flops=2 * m,
            bytes_read=2 * m * w,
            bytes_written=m * w,
            threads=max(1, m),
            divergent_fraction=0.15,
        ),
        dtype=beta.dtype,
        fusable=True,
        reads=(beta, alpha),
        writes=(ratios,),
    )


def tie_break_key_kernel(
    dev: Device,
    ratios: DeviceArray,
    theta_cut: float,
    basis_keys: DeviceArray,
    out: DeviceArray,
) -> None:
    """out[i] := basis_keys[i] where ratios[i] <= theta_cut, +inf elsewhere.

    Second pass of the Bland-compatible ratio test: among the rows tied at
    the minimum ratio, the leaving variable must be the one with the lowest
    *variable index* (not row index) for the anti-cycling guarantee to hold.
    ``basis_keys`` holds each row's basic-variable index as a float.
    """
    m = ratios.size
    if basis_keys.size != m or out.size != m:
        raise DeviceArrayError("tie-break kernel operand size mismatch")
    w = ratios.itemsize
    cut = ratios.dtype.type(theta_cut)
    inf = out.dtype.type(RATIO_INF)

    def body() -> None:
        out.data[:] = np.where(ratios.data <= cut, basis_keys.data, inf).astype(
            out.dtype
        )

    dev.launch(
        "kernel.tie_break",
        body,
        OpCost(
            flops=m,
            bytes_read=2 * m * w,
            bytes_written=m * w,
            threads=max(1, m),
            divergent_fraction=0.05,
        ),
        dtype=ratios.dtype,
        fusable=True,
        reads=(ratios, basis_keys),
        writes=(out,),
    )


def eta_kernel(
    dev: Device,
    alpha: DeviceArray,
    p: int,
    pivot: float,
    out: DeviceArray,
) -> None:
    """out := η − e_p, the rank-1 factor of the basis-inverse update.

    η_i = −α_i/α_p (i ≠ p), η_p = 1/α_p; subtracting e_p folds the
    "replace row p" correction into a single GER:
    ``B⁻¹ += (η − e_p) ⊗ (B⁻¹)_{p,·}``.
    """
    m = alpha.size
    if out.size != m:
        raise DeviceArrayError("eta kernel operand size mismatch")
    if pivot == 0.0:
        raise DeviceArrayError("eta kernel called with zero pivot")
    w = alpha.itemsize
    inv_piv = alpha.dtype.type(1.0 / pivot)

    def body() -> None:
        out.data[:] = -alpha.data * inv_piv
        out.data[p] = inv_piv - out.dtype.type(1.0)

    dev.launch(
        "kernel.eta",
        body,
        OpCost(flops=2 * m, bytes_read=m * w, bytes_written=m * w, threads=max(1, m)),
        dtype=alpha.dtype,
        fusable=True,
        reads=(alpha,),
        writes=(out,),
    )


def update_beta_kernel(
    dev: Device,
    beta: DeviceArray,
    alpha: DeviceArray,
    theta: float,
    p: int,
) -> None:
    """β := max(β − θα, 0) elementwise, then β_p := θ (one fused kernel)."""
    m = beta.size
    if alpha.size != m:
        raise DeviceArrayError("beta update operand size mismatch")
    w = beta.itemsize
    theta_t = beta.dtype.type(theta)

    def body() -> None:
        b = beta.data
        b -= theta_t * alpha.data
        np.clip(b, 0, None, out=b)
        b[p] = theta_t

    dev.launch(
        "kernel.update_beta",
        body,
        OpCost(flops=3 * m, bytes_read=2 * m * w, bytes_written=m * w, threads=max(1, m)),
        dtype=beta.dtype,
        fusable=True,
        reads=(beta, alpha),
        writes=(beta,),
    )


def clamp_nonneg_kernel(dev: Device, x: DeviceArray) -> None:
    """x := max(x, 0) elementwise — the β feasibility clamp after a rebuild."""
    n = x.size
    w = x.itemsize

    def body() -> None:
        np.clip(x.data, 0, None, out=x.data)

    dev.launch(
        "kernel.clamp",
        body,
        OpCost(flops=n, bytes_read=n * w, bytes_written=n * w, threads=max(1, n)),
        dtype=x.dtype,
        fusable=True,
        reads=(x,),
        writes=(x,),
    )


def masked_for_min(
    dev: Device,
    values: DeviceArray,
    mask: DeviceArray,
    out: DeviceArray,
) -> None:
    """out[i] := values[i] where mask[i] != 0, +inf elsewhere.

    Prepares the pricing vector for the arg-min reduction (basic and
    otherwise ineligible columns masked out).
    """
    n = values.size
    if mask.size != n or out.size != n:
        raise DeviceArrayError("mask kernel operand size mismatch")
    w = values.itemsize
    inf = out.dtype.type(RATIO_INF)

    def body() -> None:
        out.data[:] = np.where(mask.data != 0, values.data, inf).astype(out.dtype)

    dev.launch(
        "kernel.mask_min",
        body,
        OpCost(
            flops=n,
            bytes_read=2 * n * w,
            bytes_written=n * w,
            threads=max(1, n),
            divergent_fraction=0.05,
        ),
        dtype=values.dtype,
        fusable=True,
        reads=(values, mask),
        writes=(out,),
    )


def masked_signed_for_min(
    dev: Device,
    values: DeviceArray,
    mask: DeviceArray,
    sigma: DeviceArray,
    out: DeviceArray,
) -> None:
    """out[i] := sigma[i]·values[i] where mask[i] != 0, +inf elsewhere.

    The bounded-variable pricing map: σ = +1 for nonbasic-at-lower columns
    (improve when d < 0), σ = −1 for nonbasic-at-upper columns (improve when
    d > 0); the arg-min over σ·d finds the best candidate of either kind.
    """
    n = values.size
    if mask.size != n or out.size != n or sigma.size != n:
        raise DeviceArrayError("signed mask kernel operand size mismatch")
    w = values.itemsize
    inf = out.dtype.type(RATIO_INF)

    def body() -> None:
        out.data[:] = np.where(
            mask.data != 0, sigma.data * values.data, inf
        ).astype(out.dtype)

    dev.launch(
        "kernel.mask_signed_min",
        body,
        OpCost(
            flops=2 * n,
            bytes_read=3 * n * w,
            bytes_written=n * w,
            threads=max(1, n),
            divergent_fraction=0.05,
        ),
        dtype=values.dtype,
        fusable=True,
        reads=(values, mask, sigma),
        writes=(out,),
    )


def bounded_ratio_kernel(
    dev: Device,
    x_b: DeviceArray,
    alpha: DeviceArray,
    u_basis: DeviceArray,
    sigma: float,
    tol_pivot: float,
    ratios: DeviceArray,
    to_upper: DeviceArray,
) -> None:
    """The three-way bounded ratio-test map.

    With the entering variable moving by σ·t (t >= 0), each basic moves at
    rate δ_i = −σ·α_i.  Per row:

    - δ < −tol: blocks at its lower bound after t = x_i / (−δ),
    - δ > +tol and u_i finite: blocks at its upper after t = (u_i − x_i)/δ,
    - otherwise never blocks (ratio +inf).

    ``ratios`` gets the blocking step; ``to_upper`` is 1 where the blocking
    event is the *upper* bound (the leaving variable parks at u).
    """
    m = x_b.size
    if alpha.size != m or u_basis.size != m or ratios.size != m or to_upper.size != m:
        raise DeviceArrayError("bounded ratio kernel operand size mismatch")
    w = x_b.itemsize
    s = x_b.dtype.type(sigma)
    tol = x_b.dtype.type(tol_pivot)

    def body() -> None:
        delta = (-s * alpha.data).astype(np.float64)
        x = x_b.data.astype(np.float64)
        u = u_basis.data.astype(np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            dec = delta < -tol
            t_dec = np.where(dec, x / np.maximum(-delta, 1e-300), np.inf)
            inc = (delta > tol) & np.isfinite(u)
            t_inc = np.where(inc, (u - x) / np.maximum(delta, 1e-300), np.inf)
        t_dec = np.where(t_dec < 0, 0.0, t_dec)
        t_inc = np.where(t_inc < 0, 0.0, t_inc)
        ratios.data[:] = np.minimum(t_dec, t_inc).astype(ratios.dtype)
        to_upper.data[:] = (t_inc < t_dec).astype(to_upper.dtype)

    dev.launch(
        "kernel.bounded_ratio",
        body,
        OpCost(
            flops=6 * m,
            bytes_read=3 * m * w,
            bytes_written=2 * m * w,
            threads=max(1, m),
            divergent_fraction=0.2,
        ),
        dtype=x_b.dtype,
        fusable=True,
        reads=(x_b, alpha, u_basis),
        writes=(ratios, to_upper),
    )


def bounded_update_beta_kernel(
    dev: Device,
    beta: DeviceArray,
    alpha: DeviceArray,
    step: float,
    p: int,
    p_value: float,
) -> None:
    """β := clip(β + step·α, 0, ·), then β_p := p_value.

    The bounded update: ``step = −σθ`` folds the direction in, and the
    pivot row receives the entering variable's new value (θ from lower,
    u_q − θ from upper).  ``p < 0`` skips the pivot write (bound flips)."""
    m = beta.size
    if alpha.size != m:
        raise DeviceArrayError("bounded beta update operand size mismatch")
    w = beta.itemsize
    s = beta.dtype.type(step)

    def body() -> None:
        b = beta.data
        b += s * alpha.data
        np.clip(b, 0, None, out=b)
        if p >= 0:
            b[p] = beta.dtype.type(p_value)

    dev.launch(
        "kernel.bounded_update_beta",
        body,
        OpCost(flops=3 * m, bytes_read=2 * m * w, bytes_written=m * w, threads=max(1, m)),
        dtype=beta.dtype,
        fusable=True,
        reads=(beta, alpha),
        writes=(beta,),
    )


def scale_row_kernel(
    dev: Device, src_row: DeviceArray, inv_pivot: float, out: DeviceArray
) -> None:
    """out := src_row · (1/pivot) — the pivot-row normalisation of the
    tableau method (kept separate from BLAS scal: different buffers)."""
    n = src_row.size
    if out.size != n:
        raise DeviceArrayError("row scale operand size mismatch")
    w = src_row.itemsize
    s = src_row.dtype.type(inv_pivot)

    def body() -> None:
        out.data[:] = src_row.data * s

    dev.launch(
        "kernel.scale_row",
        body,
        OpCost(flops=n, bytes_read=n * w, bytes_written=n * w, threads=max(1, n)),
        dtype=src_row.dtype,
        fusable=True,
        reads=(src_row,),
        writes=(out,),
    )


def write_row_kernel(dev: Device, mat: DeviceArray, i: int, row: DeviceArray) -> None:
    """mat[i, :] := row (coalesced row write of a row-major matrix)."""
    m, n = mat.shape
    if not 0 <= i < m or row.size != n:
        raise DeviceArrayError("row write operand mismatch")
    w = row.itemsize

    def body() -> None:
        mat.data[i, :] = row.data

    dev.launch(
        "kernel.write_row",
        body,
        OpCost(bytes_read=n * w, bytes_written=n * w, threads=max(1, n)),
        dtype=mat.dtype,
        fusable=True,
        reads=(row,),
        writes=(mat,),
    )


def ger_column_major(
    dev: Device,
    x: DeviceArray,
    y: DeviceArray,
    a: DeviceArray,
    alpha: float = 1.0,
) -> None:
    """A := A + alpha·x yᵀ for a **column-major** device matrix.

    Functionally identical to :func:`repro.gpu.blas.ger`; kept separate so
    the tableau update is attributed its own kernel name in breakdowns.
    """
    m, n = a.shape
    if x.size != m or y.size != n:
        raise DeviceArrayError("ger operand mismatch")
    w = a.itemsize
    alpha_t = a.dtype.type(alpha)

    def body() -> None:
        a.data[...] = a.data + alpha_t * np.outer(x.data, y.data)

    dev.launch(
        "kernel.tableau_ger",
        body,
        OpCost(
            flops=2 * m * n,
            bytes_read=(m * n + m + n) * w,
            bytes_written=m * n * w,
            threads=m * n,
        ),
        dtype=a.dtype,
        fusable=True,
        reads=(x, y, a),
        writes=(a,),
    )

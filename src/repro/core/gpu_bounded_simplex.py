"""Bounded-variable revised simplex on the simulated GPU.

The device port of :class:`~repro.simplex.bounded.BoundedRevisedSimplexSolver`:
upper bounds live in device memory alongside the data, the pricing map is a
signed masked arg-min (σ·d with σ = ±1 by resting bound), the ratio test is
the three-way bounded map kernel, and bound flips cost a single AXPY-class
kernel — no basis update, no GER, no eta.

Compared to ``gpu-revised`` on a fully boxed problem, this solver keeps the
basis at m instead of m + #bounds; A5 measures the effect.

Runs as a :class:`~repro.engine.backend.SolverBackend` on the shared
:mod:`repro.engine` lifecycle.
"""

from __future__ import annotations

import numpy as np

from repro.core import gpu_kernels as K
from repro.engine import SolverBackend
from repro.errors import SolverError
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import Device
from repro.gpu.reduce import NO_INDEX
from repro.gpu.sparse_kernels import DeviceCscMatrix, spmv_csc_t
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.presets import GTX280_PARAMS
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.status import SolveStatus

#: Pivot-row marker for a bound flip.
BOUND_FLIP = -2


class GpuBoundedRevisedSimplex(SolverBackend):
    """Two-phase bounded-variable revised simplex on the simulated device."""

    name = "gpu-revised-bounded"

    def __init__(
        self,
        options: SolverOptions | None = None,
        device: Device | None = None,
        gpu_params: GpuModelParams = GTX280_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing not in ("dantzig", "bland", "hybrid"):
            raise SolverError(
                "gpu-revised-bounded supports dantzig/bland/hybrid pricing"
            )
        if self.options.scale:
            raise SolverError("the bounded solver does not combine with scaling")
        self._external_device = device
        self._gpu_params = gpu_params
        self._st: "_BState | None" = None
        self.device: Device | None = device

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        opts = self.options
        self.prep = prep = prepare(problem, opts, range_bounds_as_rows=False)
        dev = self._external_device or Device(self._gpu_params)
        self.device = self.dev = dev
        dev.reset_stats()

        self._policy = policy = gpu_plan.PrecisionPolicy.from_options(opts)
        if policy.refine:
            raise SolverError(
                "gpu-revised-bounded does not support mixed precision"
            )
        dtype = policy.compute_dtype
        self.plan = gpu_plan.LaunchPlan(dev, fusion=opts.fusion, hooks=self.hooks)
        eps = float(np.finfo(dtype).eps)
        self._tol_rc = max(opts.tol_reduced_cost, 50 * eps)
        self._tol_piv = max(opts.tol_pivot, 50 * eps)

        self._st = st = _BState(prep, dev, dtype)
        self.stats = IterationStats()
        basis, needs_phase1 = initial_basis(prep)
        st.init_basis(basis)
        self.hooks.arm(
            clock=lambda: dev.clock,
            sections=lambda: dev.stats.sections,
            meta={
                "m": prep.m,
                "n": prep.n_total,
                "pricing": opts.pricing,
                "dtype": dtype.name,
                "device": dev.params.name,
            },
        )
        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = max(PHASE1_TOL, 50 * eps)
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        return self._run_phase(
            self._st, c_full, self.stats, self._tol_rc, self._tol_piv,
            phase=phase,
        )

    def phase1_objective(self) -> float:
        return blas.dot(self._st.c_b, self._st.x_b)

    def cleanup(self) -> None:
        if self._st is not None:
            self._st.free()
            self._st = None

    # ------------------------------------------------------------------

    def _run_phase(self, st: "_BState", c_full, stats, tol_rc, tol_piv,
                   phase: int = 2):
        opts = self.options
        dev = st.dev
        tr = self.hooks if self.hooks.enabled else None
        prep = st.prep
        m, n = prep.m, prep.n_total
        cap = opts.iteration_cap(m, n)
        use_bland = opts.pricing == "bland"
        stalled = 0

        st.load_phase_costs(c_full)
        z = blas.dot(st.c_b, st.x_b)  # nonbasic-at-upper share added at finish
        iters = 0

        def rule_name() -> str:
            if opts.pricing == "hybrid":
                return "hybrid:bland" if use_bland else "hybrid:dantzig"
            return opts.pricing

        while iters < cap:
            iters += 1

            with dev.timed_section("pricing"), self.plan.section("pricing") as sec:
                blas.gemv(st.binv, st.c_b, st.pi, trans=True)
                blas.copy(st.c_real, st.d)
                if st.a_sparse is not None:
                    spmv_csc_t(st.a_sparse, st.pi, st.tmp_n)
                    blas.axpy(-1.0, st.tmp_n, st.d)
                else:
                    blas.gemv(st.a_dense, st.pi, st.d, alpha=-1.0, beta=1.0,
                              trans=True)
                K.masked_signed_for_min(dev, st.d, st.mask, st.sigma, st.tmp_n)
                if use_bland:
                    q = sec.first_index_below(st.tmp_n, -tol_rc)
                    optimal = q == NO_INDEX
                    signed_dq = st.tmp_n.scalar_to_host(q) if not optimal else 0.0
                else:
                    q, signed_dq = sec.argmin(st.tmp_n)
                    optimal = signed_dq >= -tol_rc
            if optimal:
                if tr is not None:
                    tr.record(phase=phase, iteration=iters, event="optimal",
                              pricing_rule=rule_name(), objective=float(z))
                return SolveStatus.OPTIMAL, iters
            sigma = -1.0 if st.at_upper[q] else 1.0
            d_q = sigma * signed_dq  # un-sign: actual reduced cost

            with dev.timed_section("ftran"), self.plan.section("ftran"):
                st.load_column(q)
                blas.gemv(st.binv, st.a_q, st.alpha)

            with dev.timed_section("ratio"):
                with self.plan.section("ratio.map") as sec:
                    K.bounded_ratio_kernel(
                        dev, st.x_b, st.alpha, st.u_basis, sigma, tol_piv,
                        st.ratios, st.to_upper,
                    )
                    p, theta_basic = sec.argmin(st.ratios)
                theta = theta_basic
                pivot_kind = "basic"
                u_q = float(st.u_host[q])
                if np.isfinite(u_q) and u_q <= theta * (1.0 + 1e-12):
                    theta = u_q
                    pivot_kind = "flip"
                unbounded = not np.isfinite(theta)
                if not unbounded and pivot_kind == "basic":
                    # Bland-compatible tie-break among blocking rows
                    cut = theta * (1.0 + 1e-6) + 1e-30
                    with self.plan.section("ratio.tie") as sec:
                        K.tie_break_key_kernel(dev, st.ratios, cut,
                                               st.basis_keys, st.tmp_m)
                        p2, key = sec.argmin(st.tmp_m)
                    if np.isfinite(key):
                        p = p2
                    pivot = st.alpha.scalar_to_host(p)
                    leaves_at_upper = bool(st.to_upper.scalar_to_host(p) != 0.0)
            if unbounded:
                if tr is not None:
                    tr.record(phase=phase, iteration=iters, event="unbounded",
                              entering=int(q), pricing_rule=rule_name(),
                              objective=float(z))
                return SolveStatus.UNBOUNDED, iters
            degenerate = theta <= opts.tol_zero
            if degenerate:
                stats.degenerate_steps += 1
            if tr is not None and pivot_kind == "basic":
                # Uncharged diagnostic peeks at the functional backing store.
                trace_leaving = int(st.basis[p])
                trace_ties = int(np.count_nonzero(st.ratios.data <= cut))

            with dev.timed_section("update"):
                if pivot_kind == "flip":
                    with self.plan.section("update"):
                        K.bounded_update_beta_kernel(
                            dev, st.x_b, st.alpha, -sigma * theta, -1, 0.0
                        )
                    st.flip(q)
                else:
                    x_q_new = u_q - theta if sigma < 0 else theta
                    with self.plan.section("update"):
                        K.bounded_update_beta_kernel(
                            dev, st.x_b, st.alpha, -sigma * theta, p, x_q_new
                        )
                        K.eta_kernel(dev, st.alpha, p, pivot, st.eta)
                        K.extract_row(dev, st.binv, p, st.row_p)
                        blas.ger(st.eta, st.row_p, st.binv)
                    st.pivot_metadata(p, q, float(c_full[q]), leaves_at_upper)
            z += d_q * sigma * theta
            if tr is not None:
                if pivot_kind == "flip":
                    tr.record(
                        phase=phase, iteration=iters, event="flip",
                        entering=int(q), theta=float(theta),
                        pricing_rule=rule_name(), objective=float(z),
                        degenerate=degenerate,
                    )
                else:
                    tr.record(
                        phase=phase, iteration=iters, event="pivot",
                        entering=int(q), leaving_row=int(p),
                        leaving_var=trace_leaving,
                        pivot=float(pivot), theta=float(theta),
                        ratio_ties=trace_ties, pricing_rule=rule_name(),
                        objective=float(z), degenerate=degenerate,
                    )

            improved = (-d_q * sigma) * theta > 1e-12 * (1.0 + abs(z))
            if opts.pricing == "hybrid":
                if improved:
                    stalled = 0
                    use_bland = False
                else:
                    stalled += 1
                    if stalled >= opts.stall_window and not use_bland:
                        use_bland = True
                        stats.bland_activations += 1
                        stalled = 0

        return SolveStatus.ITERATION_LIMIT, iters

    def drive_out_artificials(self) -> None:
        st = self._st
        tol_piv = self._tol_piv
        dev = st.dev
        prep = st.prep
        n = prep.n_total
        for p in np.nonzero(st.basis >= n)[0]:
            p = int(p)
            K.extract_row(dev, st.binv, p, st.row_p)
            if st.a_sparse is not None:
                spmv_csc_t(st.a_sparse, st.row_p, st.tmp_n)
            else:
                blas.gemv(st.a_dense, st.row_p, st.tmp_n, trans=True)
            row = st.tmp_n.copy_to_host().astype(np.float64)
            candidates = np.nonzero((~st.in_basis[:n]) & (np.abs(row) > 1e-5))[0]
            if candidates.size == 0:
                continue
            j = int(candidates[np.argmax(np.abs(row[candidates]))])
            st.load_column(j)
            blas.gemv(st.binv, st.a_q, st.alpha)
            pivot = st.alpha.scalar_to_host(p)
            if abs(pivot) <= tol_piv:
                continue
            # degenerate swap: no value moves; the new basic takes its
            # current resting value
            value = float(st.u_host[j]) if st.at_upper[j] else 0.0
            K.eta_kernel(dev, st.alpha, p, pivot, st.eta)
            K.extract_row(dev, st.binv, p, st.row_p)
            blas.ger(st.eta, st.row_p, st.binv)
            st.x_b.set_scalar(p, value)
            st.pivot_metadata(p, j, 0.0, leaves_at_upper=False)

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        dev = self.dev
        breakdown = dict(dev.stats.sections)
        breakdown["transfer"] = dev.stats.transfer_seconds
        return TimingStats(
            modeled_seconds=dev.clock,
            wall_seconds=wall_seconds,
            transfer_seconds=dev.stats.transfer_seconds,
            kernel_breakdown=breakdown,
        )

    def standard_extras(self, result: SolveResult) -> None:
        dev = self.dev
        result.extra["device"] = dev.params.name
        result.extra["bound_flips"] = self._st.flips
        result.extra["kernel_launches"] = dev.stats.kernel_launches
        result.extra["by_kernel"] = dev.stats.kernel_breakdown()
        if self.options.fusion:
            result.extra["fused_launches"] = self.plan.fused_launches
            result.extra["fused_ops"] = self.plan.fused_ops
            result.extra["fusion_saved_seconds"] = self.plan.saved_seconds

    def extract(self, result: SolveResult) -> None:
        st = self._st
        prep = self.prep
        n = prep.n_total
        x_b = st.x_b.copy_to_host().astype(np.float64)
        x_std = np.zeros(n)
        x_std[st.at_upper] = st.u_host[:n][st.at_upper]
        real = st.basis < n
        x_std[st.basis[real]] = x_b[real]
        z_std = float(prep.std.c @ x_std)
        result.objective = prep.std.original_objective(z_std)
        result.x = prep.std.recover_x(x_std)
        result.residuals = SolveResult.compute_residuals(
            prep.std.a, prep.std.b, x_std
        )
        result.extra["basis"] = st.basis.copy()
        result.extra["x_std"] = x_std
        result.extra["at_upper"] = st.at_upper.copy()

    def finalize_timing(self, result: SolveResult) -> None:
        # the solution download in extract() advanced the clock; the
        # reported machine time must include it
        dev = self.dev
        result.timing.modeled_seconds = dev.clock
        result.timing.transfer_seconds = dev.stats.transfer_seconds
        result.timing.kernel_breakdown["transfer"] = dev.stats.transfer_seconds


class _BState:
    """Device-resident bounded-solver state + host bookkeeping."""

    def __init__(self, prep: PreparedLP, dev: Device, dtype: np.dtype):
        self.prep = prep
        self.dev = dev
        self.dtype = dtype
        m, n = prep.m, prep.n_total
        self.u_host = np.concatenate(
            [prep.std.upper_bounds(), np.full(m, np.inf)]
        )

        self.a_sparse: DeviceCscMatrix | None = None
        self.a_dense = None
        try:
            with dev.timed_section("transfer"):
                if prep.is_sparse:
                    self.a_sparse = DeviceCscMatrix(dev, prep.a, dtype)
                else:
                    self.a_dense = dev.to_device(np.asarray(prep.a), dtype)
                self.b = dev.to_device(prep.b, dtype)
                self.binv = dev.to_device(np.eye(m), dtype)
                self.x_b = dev.to_device(prep.b, dtype)
                self.c_real = dev.to_device(np.zeros(n), dtype)
                self.c_b = dev.to_device(np.zeros(m), dtype)
                self.mask = dev.to_device(np.ones(n), dtype)
                self.sigma = dev.to_device(np.ones(n), dtype)
                self.u_basis = dev.to_device(np.full(m, np.inf), dtype)
            self.pi = dev.zeros(m, dtype)
            self.d = dev.zeros(n, dtype)
            self.tmp_n = dev.zeros(n, dtype)
            self.tmp_m = dev.zeros(m, dtype)
            self.basis_keys = dev.zeros(m, dtype)
            self.a_q = dev.zeros(m, dtype)
            self.alpha = dev.zeros(m, dtype)
            self.ratios = dev.zeros(m, dtype)
            self.to_upper = dev.zeros(m, dtype)
            self.eta = dev.zeros(m, dtype)
            self.row_p = dev.zeros(m, dtype)
        except Exception:
            self.free()
            raise

        self.basis = np.zeros(m, dtype=np.int64)
        self.in_basis = np.zeros(n + m, dtype=bool)
        self.at_upper = np.zeros(n, dtype=bool)
        self.flips = 0

    def init_basis(self, basis: np.ndarray) -> None:
        self.basis = basis.astype(np.int64).copy()
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        n = self.prep.n_total
        mask_host = np.where(self.in_basis[:n], 0.0, 1.0)
        with self.dev.timed_section("transfer"):
            self.mask.copy_from_host(mask_host.astype(self.dtype))
            self.basis_keys.copy_from_host(self.basis.astype(self.dtype))
            self.u_basis.copy_from_host(
                self.u_host[self.basis].astype(self.dtype)
            )

    def load_phase_costs(self, c_full: np.ndarray) -> None:
        n = self.prep.n_total
        with self.dev.timed_section("transfer"):
            self.c_real.copy_from_host(c_full[:n].astype(self.dtype))
            self.c_b.copy_from_host(c_full[self.basis].astype(self.dtype))

    def load_column(self, j: int) -> None:
        n = self.prep.n_total
        if j >= n:
            K.unit_vector(self.dev, self.a_q, j - n)
        elif self.a_sparse is not None:
            self.a_sparse.getcol_device(j, self.a_q)
        else:
            K.extract_column(self.dev, self.a_dense, j, self.a_q)

    def flip(self, q: int) -> None:
        """Bound flip of nonbasic q: host flag + device σ sign swap."""
        self.at_upper[q] = ~self.at_upper[q]
        self.flips += 1
        self.sigma.set_scalar(q, -1.0 if self.at_upper[q] else 1.0)

    def pivot_metadata(self, p: int, q: int, c_q: float,
                       leaves_at_upper: bool) -> None:
        leaving = int(self.basis[p])
        n = self.prep.n_total
        self.in_basis[leaving] = False
        self.in_basis[q] = True
        self.basis[p] = q
        if q < n:
            self.mask.set_scalar(q, 0.0)
            self.at_upper[q] = False
            self.sigma.set_scalar(q, 1.0)
        if leaving < n:
            self.mask.set_scalar(leaving, 1.0)
            goes_up = leaves_at_upper and np.isfinite(self.u_host[leaving])
            self.at_upper[leaving] = goes_up
            self.sigma.set_scalar(leaving, -1.0 if goes_up else 1.0)
        self.c_b.set_scalar(p, c_q)
        self.basis_keys.set_scalar(p, float(q))
        self.u_basis.set_scalar(p, float(self.u_host[q]))  # +inf is fine in fp32

    def free(self) -> None:
        for name in (
            "b", "binv", "x_b", "c_real", "c_b", "mask", "sigma", "u_basis",
            "pi", "d", "tmp_n", "tmp_m", "basis_keys", "a_q", "alpha",
            "ratios", "to_upper", "eta", "row_p",
        ):
            arr = getattr(self, name, None)
            if arr is not None and not arr.is_freed:
                arr.free()
        if self.a_dense is not None and not self.a_dense.is_freed:
            self.a_dense.free()
        if self.a_sparse is not None and not self.a_sparse.data.is_freed:
            self.a_sparse.free()

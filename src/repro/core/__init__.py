"""The paper's contribution: simplex solvers on the simulated GPU.

- :mod:`~repro.core.gpu_kernels`         — the solver-specific device
  kernels (column extraction, ratio-test map, eta construction, β update,
  masked pricing) layered over :mod:`repro.gpu`.
- :mod:`~repro.core.gpu_revised_simplex` — **GpuRevisedSimplex**, the
  paper's solver: device-resident B⁻¹, BLAS-2 iteration (BTRAN/pricing/
  FTRAN as GEMV, rank-1 GER basis update), dense or sparse constraint
  matrix, fp32/fp64.
- :mod:`~repro.core.gpu_tableau_simplex` — **GpuTableauSimplex**, the
  full-tableau design point (O(mn) GER per iteration, maximal parallelism)
  used by the A3 ablation.
"""

from repro.core.gpu_revised_simplex import GpuRevisedSimplex
from repro.core.gpu_tableau_simplex import GpuTableauSimplex

__all__ = ["GpuRevisedSimplex", "GpuTableauSimplex"]

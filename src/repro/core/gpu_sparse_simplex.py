"""Sparse revised simplex on the (simulated) GPU.

The sparse counterpart of :mod:`repro.core.gpu_revised_simplex`, following
the explicit-sparse-memory design of Gahrouei & Ghatee (arXiv:1803.04378)
rather than the paper's dense layout: the constraint matrix stays on the
device in CSC form, pricing is one ``spmv_csc_t`` launch (the CSC of A *is*
the CSR of Aᵀ, so one thread per column prices every nonbasic variable),
and the dense m×m basis inverse — the allocation that capped the dense
solver's problem size — is replaced by sparse LU factors plus a sparse eta
file whose device footprint scales with their nonzeros.

Factor placement follows the hybrid scheme real sparse-simplex GPU codes
use: the triangular solves (FTRAN/BTRAN) launch as device kernels whose
modeled cost scales with ``nnz(L)+nnz(U)+nnz(etas)``, while the *numerics*
of those solves are mirrored by a host-side
:class:`~repro.simplex.sparse_basis.SparseLUBasis` (uncharged — it is the
functional backing store of the device factors, exactly as dense device
arrays are backed by host ndarrays).  Refactorisation happens on the host
— sparse LU pivoting is sequential and branchy, the classic CPU-side step
— and the fresh factors are uploaded over PCIe, which the model charges.

Per-iteration kernel schedule:

======== ==========================================================
section  kernels
======== ==========================================================
pricing  sparse.btran_lu (π), sparse.spmv_csc_t (Aᵀπ), axpy,
         mask map, arg-min tree reduction
ftran    sparse.fill_zero + sparse.scatter_col (a_q), sparse.ftran_lu
ratio    ratio map kernel, arg-min tree reduction (+ tie-break pass)
update   β update kernel, sparse.eta_append, scalar HtoD writes
======== ==========================================================

Runs as a :class:`~repro.engine.backend.SolverBackend`; instrumentation
flows only through the engine observer hooks.
"""

from __future__ import annotations

import numpy as np

from repro.core import gpu_kernels as K
from repro.core.gpu_revised_simplex import _GpuPricing
from repro.engine import SolverBackend, attach_standard_solution, rule_label
from repro.errors import SingularBasisError, SolverError
from repro.gpu import blas
from repro.gpu import plan as gpu_plan
from repro.gpu.device import Device
from repro.gpu.memory import DeviceArray
from repro.gpu.sparse_kernels import INDEX_BYTES, DeviceCscMatrix, spmv_csc_t
from repro.lp.problem import LPProblem
from repro.lp.standard_form import StandardFormLP
from repro.perfmodel.gpu_model import GpuModelParams
from repro.perfmodel.ops import OpCost
from repro.perfmodel.presets import GTX280_PARAMS
from repro.result import IterationStats, SolveResult, TimingStats
from repro.simplex.common import (
    PHASE1_TOL,
    PreparedLP,
    initial_basis,
    phase1_costs,
    phase2_costs,
    prepare,
)
from repro.simplex.options import SolverOptions
from repro.simplex.revised_sparse import _as_sparse_prep
from repro.simplex.sparse_basis import SparseLUBasis, basis_columns_csc
from repro.status import SolveStatus


class GpuSparseRevisedSimplex(SolverBackend):
    """Two-phase sparse revised simplex on the simulated SIMT device.

    ``solve(problem, initial_basis_hint=...)`` warm-starts from a previous
    basis: the hint is factorised sparsely on the host and the factors are
    uploaded (one PCIe round trip).  A singular or primal-infeasible hint
    falls back to the cold crash basis.  Dense inputs are converted to CSC
    on entry — this method always runs the sparse data path.
    """

    name = "gpu-revised-sparse"
    accepts_warm_start = True

    def __init__(
        self,
        options: SolverOptions | None = None,
        device: Device | None = None,
        gpu_params: GpuModelParams = GTX280_PARAMS,
    ):
        self.options = options or SolverOptions()
        if self.options.pricing in ("devex", "steepest-edge"):
            raise SolverError(
                f"pricing {self.options.pricing!r} needs tableau columns; "
                "use the tableau solvers"
            )
        self._external_device = device
        self._gpu_params = gpu_params
        self._st: "_SparseState | None" = None
        #: The device of the last solve (statistics inspection).
        self.device: Device | None = device

    # -- engine backend interface --------------------------------------

    def begin(self, problem: "LPProblem | StandardFormLP", warm_hint) -> None:
        opts = self.options
        self.prep = prep = _as_sparse_prep(prepare(problem, opts))
        dev = self._external_device or Device(self._gpu_params)
        self.device = self.dev = dev
        dev.reset_stats()

        self._policy = policy = gpu_plan.PrecisionPolicy.from_options(opts)
        if policy.refine:
            raise SolverError(
                "gpu-revised-sparse does not support mixed precision"
            )
        dtype = policy.compute_dtype
        self.plan = gpu_plan.LaunchPlan(dev, fusion=opts.fusion, hooks=self.hooks)
        eps = float(np.finfo(dtype).eps)
        self._tol_rc = max(opts.tol_reduced_cost, 50 * eps)
        self._tol_piv = max(opts.tol_pivot, 50 * eps)

        m, n = prep.m, prep.n_total
        self._st = st = _SparseState(prep, dev, dtype)
        self.stats = stats = IterationStats()
        basis, needs_phase1 = initial_basis(prep)
        st.init_basis(basis)
        self.hooks.arm(
            clock=lambda: dev.clock,
            sections=lambda: dev.stats.sections,
            meta={
                "m": m,
                "n": n,
                "pricing": opts.pricing,
                "dtype": dtype.name,
                "device": dev.params.name,
                "nnz": prep.nnz,
            },
        )

        if warm_hint is not None:
            from repro.simplex.common import validate_warm_basis

            warm = validate_warm_basis(prep, warm_hint)
            warm_beta = None
            try:
                # host-side trial factorisation (the backing store of the
                # device factors; the upload below is what the model charges)
                st.lu.refactorize(basis_columns_csc(prep, warm))
                warm_beta = st.lu.ftran(prep.b)
            except SingularBasisError:
                pass
            if warm_beta is not None and warm_beta.min() >= -1e-7:
                st.init_basis(warm)
                st.upload_factor()
                with dev.timed_section("transfer"):
                    st.beta.copy_from_host(
                        np.clip(warm_beta, 0.0, None).astype(dtype)
                    )
                needs_phase1 = bool(np.any(warm >= n))
                stats.refactorizations += 1
            else:
                st.lu.reset_identity()

        self.needs_phase1 = needs_phase1
        self.phase1_feas_tol = max(PHASE1_TOL, 50 * eps)
        return None

    def run_phase(self, phase: int) -> tuple[SolveStatus, int]:
        c_full = phase1_costs(self.prep) if phase == 1 else phase2_costs(self.prep)
        return self._run_phase(self._st, c_full, self.stats, phase)

    def phase1_objective(self) -> float:
        return blas.dot(self._st.c_b, self._st.beta)

    def cleanup(self) -> None:
        if self._st is not None:
            self._st.free()
            self._st = None

    # ------------------------------------------------------------------

    def _run_phase(
        self,
        st: "_SparseState",
        c_full: np.ndarray,
        stats: IterationStats,
        phase: int,
    ) -> tuple[SolveStatus, int]:
        opts = self.options
        dev = st.dev
        prep = st.prep
        m, n = prep.m, prep.n_total
        cap = opts.iteration_cap(m, n)
        pricing = _GpuPricing(opts.pricing, opts.stall_window)

        st.load_phase_costs(c_full)
        z = blas.dot(st.c_b, st.beta)
        iters = 0
        tr = self.hooks if self.hooks.enabled else None

        while iters < cap:
            iters += 1

            # -- pricing: π = B⁻ᵀ c_B (sparse BTRAN);  d = c − Aᵀπ;  arg-min
            with dev.timed_section("pricing"), self.plan.section("pricing") as sec:
                st.btran_lu(st.c_b, st.pi)
                blas.copy(st.c_real, st.d)
                spmv_csc_t(st.a_sparse, st.pi, st.tmp_n)
                blas.axpy(-1.0, st.tmp_n, st.d)
                choice = pricing.select(sec, st.d, st.mask, st.tmp_n, self._tol_rc)
            if choice is None:
                stats.bland_activations += pricing.activations
                if tr is not None:
                    tr.record(
                        phase=phase, iteration=iters, event="optimal",
                        pricing_rule=rule_label(pricing),
                        eta_count=st.lu.eta_count, objective=float(z),
                    )
                return SolveStatus.OPTIMAL, iters
            q, d_q = choice

            # -- ftran: α = B⁻¹ a_q through the sparse factors
            with dev.timed_section("ftran"):
                with self.plan.section("ftran"):
                    st.load_column(q)
                    alpha_h = st.ftran_lu(st.a_q, st.alpha)
                alpha64 = alpha_h["x"]

            # -- ratio test (device map + reductions, Bland tie-break)
            with dev.timed_section("ratio"):
                with self.plan.section("ratio.map") as sec:
                    K.ratio_kernel(dev, st.beta, st.alpha, st.ratios,
                                   self._tol_piv)
                    p, theta = sec.argmin(st.ratios)
                if not np.isfinite(theta):
                    stats.bland_activations += pricing.activations
                    if tr is not None:
                        tr.record(
                            phase=phase, iteration=iters, event="unbounded",
                            entering=int(q), pricing_rule=rule_label(pricing),
                            eta_count=st.lu.eta_count, objective=float(z),
                        )
                    return SolveStatus.UNBOUNDED, iters
                cut = theta * (1.0 + 1e-6) + 1e-30
                with self.plan.section("ratio.tie") as sec:
                    K.tie_break_key_kernel(dev, st.ratios, cut, st.basis_keys,
                                           st.tmp_m)
                    p2, key = sec.argmin(st.tmp_m)
                if np.isfinite(key):
                    p = p2
                pivot = st.alpha.scalar_to_host(p)
            if theta <= opts.tol_zero:
                stats.degenerate_steps += 1
            if tr is not None:
                # uncharged diagnostic peeks at the functional backing store
                trace_leaving = int(st.basis[p])
                trace_ties = int(np.count_nonzero(st.ratios.data <= cut))

            # -- update: β, eta file, basis metadata, objective
            with dev.timed_section("update"):
                with self.plan.section("update"):
                    K.update_beta_kernel(dev, st.beta, st.alpha, theta, p)
                    appended = st.append_eta(alpha64, p, self._tol_piv)
                if appended:
                    st.pivot_metadata(p, q, float(c_full[q]))
            if not appended:
                # pivot too small for the factors: refactorise and retry
                if not self._refactor(st, stats):
                    if tr is not None:
                        tr.record(
                            phase=phase, iteration=iters, event="numerical",
                            entering=int(q), leaving_row=int(p),
                            pricing_rule=rule_label(pricing), objective=float(z),
                        )
                    return SolveStatus.NUMERICAL, iters
                z = blas.dot(st.c_b, st.beta)
                continue
            z += theta * d_q
            if tr is not None:
                tr.record(
                    phase=phase, iteration=iters, event="pivot",
                    entering=int(q), leaving_row=int(p),
                    leaving_var=trace_leaving,
                    pivot=float(pivot), theta=float(theta),
                    ratio_ties=trace_ties, pricing_rule=rule_label(pricing),
                    eta_count=st.lu.eta_count, objective=float(z),
                    degenerate=theta <= opts.tol_zero,
                )
            pricing.notify(theta * (-d_q) > 1e-12 * (1.0 + abs(z)))

            # periodic *or* fill-triggered refactorisation
            if (
                opts.refactor_period and iters % opts.refactor_period == 0
            ) or st.lu.needs_refresh():
                if not self._refactor(st, stats):
                    return SolveStatus.NUMERICAL, iters
                z = blas.dot(st.c_b, st.beta)

        stats.bland_activations += pricing.activations
        return SolveStatus.ITERATION_LIMIT, iters

    def _refactor(self, st: "_SparseState", stats: IterationStats) -> bool:
        try:
            with self.hooks.span("engine.refactor"):
                st.refactor()
        except SingularBasisError:
            return False
        stats.refactorizations += 1
        return True

    # ------------------------------------------------------------------

    def drive_out_artificials(self) -> None:
        """Replace zero-valued artificial basics by real columns: the
        transformed row e_pᵀB⁻¹A comes from a sparse BTRAN plus one SpMVᵀ."""
        st = self._st
        tol_piv = self._tol_piv
        dev = st.dev
        prep = st.prep
        m, n = prep.m, prep.n_total
        for p in np.nonzero(st.basis >= n)[0]:
            p = int(p)
            e_p = np.zeros(m)
            e_p[p] = 1.0
            with dev.timed_section("transfer"):
                st.tmp_m.copy_from_host(e_p.astype(st.dtype))
            st.btran_lu(st.tmp_m, st.tmp_m)
            spmv_csc_t(st.a_sparse, st.tmp_m, st.tmp_n)
            alpha_row = st.tmp_n.copy_to_host().astype(np.float64)
            eligible = (~st.in_basis[:n]) & (np.abs(alpha_row) > 1e-5)
            candidates = np.nonzero(eligible)[0]
            if candidates.size == 0:
                continue  # redundant row; artificial stays basic at zero
            j = int(candidates[np.argmax(np.abs(alpha_row[candidates]))])
            st.load_column(j)
            alpha64 = st.ftran_lu(st.a_q, st.alpha)["x"]
            pivot = float(alpha64[p])
            if abs(pivot) <= tol_piv:
                continue
            beta_p = st.beta.scalar_to_host(p)
            theta = beta_p / pivot
            K.update_beta_kernel(dev, st.beta, st.alpha, theta, p)
            if not st.append_eta(alpha64, p, tol_piv):
                continue
            st.pivot_metadata(p, j, 0.0)

    # -- finish participation ------------------------------------------

    def timing(self, wall_seconds: float) -> TimingStats:
        dev = self.dev
        breakdown = dict(dev.stats.sections)
        breakdown["transfer"] = dev.stats.transfer_seconds
        return TimingStats(
            modeled_seconds=dev.clock,
            wall_seconds=wall_seconds,
            transfer_seconds=dev.stats.transfer_seconds,
            kernel_breakdown=breakdown,
        )

    def standard_extras(self, result: SolveResult) -> None:
        dev = self.dev
        st = self._st
        result.extra["device"] = dev.params.name
        result.extra["kernel_launches"] = dev.stats.kernel_launches
        result.extra["kernel_bytes"] = sum(
            rec.bytes for rec in dev.stats.by_kernel.values()
        )
        result.extra["by_kernel"] = dev.stats.kernel_breakdown()
        result.extra["peak_device_bytes"] = dev.stats.peak_bytes_in_use
        if st is not None:
            result.extra["a_nnz"] = st.prep.nnz
            result.extra["lu_nnz"] = st.lu.lu_nnz
            result.extra["eta_nnz"] = st.lu.eta_nnz
            result.extra["fill_ratio"] = st.lu.fill_ratio
        if self.options.fusion:
            result.extra["fused_launches"] = self.plan.fused_launches
            result.extra["fused_ops"] = self.plan.fused_ops
            result.extra["fusion_saved_seconds"] = self.plan.saved_seconds

    def extract(self, result: SolveResult) -> None:
        st = self._st
        beta_host = st.beta.copy_to_host().astype(np.float64)
        attach_standard_solution(result, self.prep, st.basis, beta_host)

    def finalize_timing(self, result: SolveResult) -> None:
        # the solution download in extract() advanced the clock; the
        # reported machine time must include it
        dev = self.dev
        result.timing.modeled_seconds = dev.clock
        result.timing.transfer_seconds = dev.stats.transfer_seconds
        result.timing.kernel_breakdown["transfer"] = dev.stats.transfer_seconds


class _SparseState:
    """Device-resident sparse solver state plus host-side bookkeeping.

    The device holds: the CSC constraint matrix, all dense m/n work vectors,
    a byte buffer standing for the packed LU factors and one small buffer
    per sparse eta.  The host mirrors the factor *numerics* in ``self.lu``
    (the functional backing store) and the basis index bookkeeping.
    """

    def __init__(self, prep: PreparedLP, dev: Device, dtype: np.dtype):
        self.prep = prep
        self.dev = dev
        self.dtype = dtype
        m, n = prep.m, prep.n_total
        self._w = int(np.dtype(dtype).itemsize)

        self.lu = SparseLUBasis(m, recorder=None)
        self.factor_buf: DeviceArray | None = None
        self.eta_bufs: list[DeviceArray] = []
        try:
            with dev.timed_section("transfer"):
                self.a_sparse = DeviceCscMatrix(dev, prep.a, dtype)
                self.b = dev.to_device(prep.b, dtype)
                self.beta = dev.to_device(prep.b, dtype)
                self.c_real = dev.to_device(np.zeros(n), dtype)
                self.c_b = dev.to_device(np.zeros(m), dtype)
                self.mask = dev.to_device(np.ones(n), dtype)
            self.pi = dev.zeros(m, dtype)
            self.d = dev.zeros(n, dtype)
            self.tmp_n = dev.zeros(n, dtype)
            self.tmp_m = dev.zeros(m, dtype)
            self.basis_keys = dev.zeros(m, dtype)
            self.a_q = dev.zeros(m, dtype)
            self.alpha = dev.zeros(m, dtype)
            self.ratios = dev.zeros(m, dtype)
            self.upload_factor()  # identity factors of the crash basis
        except Exception:
            # a failed allocation (device OOM) must not leak what was
            # already placed on the card
            self.free()
            raise

        self.basis = np.zeros(m, dtype=np.int64)
        self.in_basis = np.zeros(n + m, dtype=bool)

    # -- factor placement --------------------------------------------------

    def _factor_nbytes(self) -> int:
        return max(1, self.lu.lu_nnz * (self._w + INDEX_BYTES))

    def upload_factor(self) -> None:
        """(Re)place the packed factors on the device; frees stale etas.

        The upload is a real HtoD transfer in the model — refactorisation
        is host work and the fresh factors must cross PCIe.
        """
        for buf in self.eta_bufs:
            if not buf.is_freed:
                buf.free()
        self.eta_bufs.clear()
        if self.factor_buf is not None and not self.factor_buf.is_freed:
            self.factor_buf.free()
        with self.dev.timed_section("transfer"):
            self.factor_buf = self.dev.to_device(
                np.zeros(self._factor_nbytes(), dtype=np.uint8)
            )

    def _lu_solve_cost(self) -> OpCost:
        # Vector-style level-scheduled triangular solve (cuSPARSE csrsv2
        # lineage): one thread per stored nonzero, columns of a level in
        # parallel, factor segments streamed contiguously.  Same thread and
        # coalescing convention as the SpMV kernels above it in the stack.
        work = self.lu.lu_nnz + self.lu.eta_nnz
        m = self.prep.m
        w = self._w
        return OpCost(
            flops=2.0 * work,
            bytes_read=work * (w + INDEX_BYTES) + m * w,
            bytes_written=m * w,
            threads=max(1, work),
            coalesced_fraction=0.6,
        )

    def ftran_lu(
        self, src: DeviceArray, dst: DeviceArray
    ) -> dict[str, np.ndarray]:
        """α := B⁻¹ src through the device factors.

        Returns a holder dict whose ``"x"`` entry is the exact float64
        result (the factor mirror's arithmetic) for the eta update.  The
        entry appears when the kernel body *executes* — inside a capturing
        plan section that is at section exit, so read it after the section
        closes.
        """
        holder: dict[str, np.ndarray] = {}

        def body() -> None:
            x = self.lu.ftran(src.data.astype(np.float64))
            holder["x"] = x
            dst.data[:] = x.astype(self.dtype)

        gpu_plan.emit(
            self.dev, "sparse.ftran_lu", body, self._lu_solve_cost(),
            dtype=self.dtype, reads=(src,), writes=(dst,),
        )
        return holder

    def btran_lu(self, src: DeviceArray, dst: DeviceArray) -> None:
        """dst := B⁻ᵀ src through the device factors."""

        def body() -> None:
            pi = self.lu.btran(src.data.astype(np.float64))
            dst.data[:] = pi.astype(self.dtype)

        gpu_plan.emit(
            self.dev, "sparse.btran_lu", body, self._lu_solve_cost(),
            dtype=self.dtype, reads=(src,), writes=(dst,),
        )

    def append_eta(self, alpha64: np.ndarray, p: int, tol_pivot: float) -> bool:
        """Mirror the pivot into the factor file and charge the device eta
        kernel + its buffer; False when the pivot is below tolerance."""
        before = self.lu.eta_nnz
        try:
            self.lu.update(alpha64, p, tol_pivot)
        except SingularBasisError:
            return False
        added = self.lu.eta_nnz - before
        m = self.prep.m
        w = self._w
        # the kernel scans α once and writes the compacted eta column
        gpu_plan.emit(
            self.dev,
            "sparse.eta_append",
            lambda: None,  # numerics live in the host factor mirror
            OpCost(
                flops=float(m),
                bytes_read=m * w,
                bytes_written=added * (w + INDEX_BYTES),
                threads=max(1, m),
                coalesced_fraction=0.6,
            ),
            dtype=self.dtype,
            reads=(self.alpha,),
        )
        self.eta_bufs.append(
            self.dev.alloc(max(1, added * (w + INDEX_BYTES)), np.uint8)
        )
        return True

    def refactor(self) -> None:
        """Host refactorisation from the basis' CSC columns, PCIe upload,
        and a device β refresh through the fresh factors."""
        self.lu.refactorize(basis_columns_csc(self.prep, self.basis))
        self.upload_factor()
        self.ftran_lu(self.b, self.beta)
        K.clamp_nonneg_kernel(self.dev, self.beta)

    # -- basis bookkeeping ------------------------------------------------

    def init_basis(self, basis: np.ndarray) -> None:
        self.basis = basis.astype(np.int64).copy()
        self.in_basis = np.zeros(self.prep.n_total + self.prep.m, dtype=bool)
        self.in_basis[self.basis] = True
        mask_host = np.where(self.in_basis[: self.prep.n_total], 0.0, 1.0)
        with self.dev.timed_section("transfer"):
            self.mask.copy_from_host(mask_host.astype(self.dtype))
            self.basis_keys.copy_from_host(self.basis.astype(self.dtype))

    def load_phase_costs(self, c_full: np.ndarray) -> None:
        """Upload the phase cost data: c over real columns and c_B."""
        n = self.prep.n_total
        with self.dev.timed_section("transfer"):
            self.c_real.copy_from_host(c_full[:n].astype(self.dtype))
            self.c_b.copy_from_host(c_full[self.basis].astype(self.dtype))

    def load_column(self, j: int) -> None:
        """a_q := column j (CSC scatter or synthesised artificial e_i)."""
        n = self.prep.n_total
        if j >= n:
            K.unit_vector(self.dev, self.a_q, j - n)
        else:
            self.a_sparse.getcol_device(j, self.a_q)

    def pivot_metadata(self, p: int, q: int, c_q: float) -> None:
        """Host-side basis swap + the device metadata writes it entails."""
        leaving = int(self.basis[p])
        n = self.prep.n_total
        self.in_basis[leaving] = False
        self.in_basis[q] = True
        self.basis[p] = q
        if q < n:
            self.mask.set_scalar(q, 0.0)
        if leaving < n:
            self.mask.set_scalar(leaving, 1.0)
        self.c_b.set_scalar(p, c_q)
        self.basis_keys.set_scalar(p, float(q))

    def free(self) -> None:
        """Release every device allocation; tolerates partially-constructed
        state (OOM during ``__init__``)."""
        for name in (
            "b", "beta", "c_real", "c_b", "mask",
            "pi", "d", "tmp_n", "tmp_m", "basis_keys",
            "a_q", "alpha", "ratios",
        ):
            arr = getattr(self, name, None)
            if arr is not None and not arr.is_freed:
                arr.free()
        if self.factor_buf is not None and not self.factor_buf.is_freed:
            self.factor_buf.free()
        for buf in self.eta_bufs:
            if not buf.is_freed:
                buf.free()
        self.eta_bufs.clear()
        a = getattr(self, "a_sparse", None)
        if a is not None and not a.data.is_freed:
            a.free()

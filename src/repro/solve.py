"""Top-level solve façade: one entry point, every solver behind it.

``solve(problem, method=...)`` dispatches to:

- ``"tableau"``      — CPU dense tableau simplex (baseline).
- ``"revised"``      — CPU dense revised simplex (the paper's comparator).
- ``"revised-bounded"`` — CPU revised simplex with native upper-bound
  handling (bound flips instead of extra rows).
- ``"revised-sparse"`` — CPU sparse revised simplex: CSC data, sparse LU
  basis factors with a sparse eta file, sectioned partial pricing.
- ``"dual"``         — CPU dual simplex (re-optimization after rhs changes
  from a dual-feasible warm basis).
- ``"gpu-revised"``  — the paper's contribution: revised simplex on the
  simulated GPU.
- ``"gpu-revised-sparse"`` — sparse revised simplex on the simulated GPU:
  device CSC matrix, SpMVᵀ pricing, sparse LU factors instead of the
  dense m×m basis inverse.
- ``"gpu-revised-bounded"`` — the GPU revised simplex with native
  upper-bound handling (bound flips on the device).
- ``"gpu-tableau"``  — full-tableau simplex on the simulated GPU (the A3
  ablation design point).
- ``"pdlp"``         — CPU first-order solver: restarted, preconditioned
  PDHG (PDLP-style) over CSC data — no phase 1, no basis; terminates on
  relative KKT residuals (``tol_kkt``).
- ``"gpu-pdlp"``     — the same first-order method on the simulated GPU:
  four kernel launches per iteration (SpMV/SpMVᵀ + fused updates), the
  regime where first-order methods overtake simplex on large sparse LPs
  (experiment F10 measures the crossover).

``method="auto"`` is not a table row but a dispatcher: it inspects the
problem (size, density, warm-start request) and picks one of the concrete
methods above via :func:`choose_method`.

All methods accept the same :class:`~repro.simplex.options.SolverOptions`.
``tests/test_solve_facade.py`` asserts this list covers every registered
method, so it cannot drift from ``_METHODS`` again.

Dispatch is data-driven: ``_METHODS`` is the declarative method table of
:mod:`repro.engine.registry` — one :class:`~repro.engine.registry.MethodSpec`
per method with a solver factory and capability flags.  Warm-start and
shared-device support are checked against those flags here, uniformly, so a
method gains a capability by flipping its flag, not by editing the façade.

For many LPs at once, :func:`solve_batch` / :func:`solve_batch_chain`
(re-exported here from :mod:`repro.batch`) share one simulated device
across the solves and price the batch under a sequential or concurrent
(stream-interleaved) schedule.
"""

from __future__ import annotations

import numpy as np

from repro.engine.registry import (
    METHODS,
    fusion_methods,
    mixed_precision_methods,
    warm_start_methods,
)
from repro.errors import UnknownMethodError
from repro.lp.problem import LPProblem
from repro.result import SolveResult
from repro.simplex.options import SolverOptions

#: The method table (name → :class:`~repro.engine.registry.MethodSpec`).
_METHODS = METHODS

#: ``method="auto"`` thresholds, calibrated against experiment F10: on
#: sparse instances below this density the modeled gpu-pdlp time overtakes
#: gpu-revised-sparse once the problem passes the size crossover
#: (F10 interpolates the crossing at m+n ≈ 745 for density 0.02).
_AUTO_DENSITY = 0.05
_AUTO_CROSSOVER = 750  # m + n at the measured modeled-time crossover


def available_methods() -> list[str]:
    """Names accepted by :func:`solve`'s ``method`` argument."""
    return sorted(_METHODS)


def choose_method(problem: LPProblem, initial_basis=None) -> str:
    """Pick a concrete method for ``method="auto"``.

    The rule mirrors the F10 crossover measurement: big sparse problems go
    to the first-order GPU solver (iteration cost is two SpMVs instead of
    a basis solve), everything else to the revised simplex variant that
    matches the storage format.  A warm-start request forces a basis
    method — the first-order solvers have no basis to start from.
    """
    m, n = problem.num_constraints, problem.num_vars
    if problem.is_sparse:
        density = problem.a.nnz / max(1, m * n)
    else:
        a = np.asarray(problem.a)
        density = np.count_nonzero(a) / max(1, a.size)
    sparse_enough = density <= _AUTO_DENSITY
    if initial_basis is None and sparse_enough and m + n >= _AUTO_CROSSOVER:
        return "gpu-pdlp"
    if problem.is_sparse:
        return "gpu-revised-sparse"
    return "gpu-revised"


def solve(
    problem: LPProblem,
    method: str = "gpu-revised",
    options: SolverOptions | None = None,
    initial_basis=None,
    device=None,
    **option_overrides,
) -> SolveResult:
    """Solve an LP with the chosen method.

    Keyword overrides are applied on top of ``options`` (or the defaults),
    e.g. ``solve(lp, method="revised", pricing="bland", max_iterations=500)``.
    ``initial_basis`` warm-starts the revised solvers from a previous basis
    (take it from ``previous_result.extra["basis"]``).  ``device`` lets a
    ``gpu-*`` solve run on an existing simulated device instead of creating
    its own — the batch layer uses this to share one device across many LPs.
    ``method="auto"`` resolves to a concrete method via
    :func:`choose_method` before dispatch.
    """
    if not isinstance(problem, LPProblem):
        raise TypeError(f"expected LPProblem, got {type(problem).__name__}")
    if method == "auto":
        method = choose_method(problem, initial_basis)
    try:
        spec = _METHODS[method]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {method!r}; available: {available_methods()}"
        ) from None
    if device is not None and not spec.supports_device:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} runs on the host; sharing a simulated device "
            "applies to the gpu-* methods only"
        )
    if initial_basis is not None and not spec.supports_warm_start:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} does not support warm starts; "
            f"warm-start methods: {sorted(warm_start_methods())}"
        )
    opts = (options or SolverOptions()).replace(**option_overrides)
    if opts.fusion and not spec.supports_fusion:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} does not lower through launch plans; "
            f"fusion methods: {sorted(fusion_methods())}"
        )
    if opts.precision is not None and not spec.supports_device:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} runs on the host; precision policies apply "
            "to the gpu-* methods only"
        )
    if opts.precision == "mixed" and not spec.supports_mixed_precision:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} does not support mixed precision; "
            f"mixed-precision methods: {sorted(mixed_precision_methods())}"
        )
    solver = spec.factory(opts, device)
    return solver.solve(problem, initial_basis_hint=initial_basis)


# Batch façade re-exports (the batch layer builds on solve(); importing at
# the bottom keeps the modules cycle-free).
from repro.batch import solve_batch, solve_batch_chain  # noqa: E402

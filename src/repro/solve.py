"""Top-level solve façade: one entry point, every solver behind it.

``solve(problem, method=...)`` dispatches to:

- ``"tableau"``      — CPU dense tableau simplex (baseline).
- ``"revised"``      — CPU dense revised simplex (the paper's comparator).
- ``"revised-bounded"`` — CPU revised simplex with native upper-bound
  handling (bound flips instead of extra rows).
- ``"dual"``         — CPU dual simplex (re-optimization after rhs changes
  from a dual-feasible warm basis).
- ``"gpu-revised"``  — the paper's contribution: revised simplex on the
  simulated GPU.
- ``"gpu-revised-bounded"`` — the GPU revised simplex with native
  upper-bound handling (bound flips on the device).
- ``"gpu-tableau"``  — full-tableau simplex on the simulated GPU (the A3
  ablation design point).

All methods accept the same :class:`~repro.simplex.options.SolverOptions`.
``tests/test_solve_facade.py`` asserts this list covers every registered
method, so it cannot drift from ``_METHODS`` again.

For many LPs at once, :func:`solve_batch` / :func:`solve_batch_chain`
(re-exported here from :mod:`repro.batch`) share one simulated device
across the solves and price the batch under a sequential or concurrent
(stream-interleaved) schedule.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import UnknownMethodError
from repro.lp.problem import LPProblem
from repro.result import SolveResult
from repro.simplex.options import SolverOptions


def _reject_device(method: str, device) -> None:
    if device is not None:
        from repro.errors import SolverError

        raise SolverError(
            f"method {method!r} runs on the host; sharing a simulated device "
            "applies to the gpu-* methods only"
        )


def _solve_tableau(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.errors import SolverError
    from repro.simplex.tableau import TableauSimplexSolver

    _reject_device("tableau", device)
    if initial_basis is not None:
        raise SolverError("warm starts are supported by the revised solvers only")
    return TableauSimplexSolver(options).solve(problem)


def _solve_revised(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.simplex.revised_cpu import RevisedSimplexSolver

    _reject_device("revised", device)
    return RevisedSimplexSolver(options).solve(problem, initial_basis_hint=initial_basis)


def _solve_revised_bounded(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.errors import SolverError
    from repro.simplex.bounded import BoundedRevisedSimplexSolver

    _reject_device("revised-bounded", device)
    if initial_basis is not None:
        raise SolverError("the bounded solver does not support warm starts yet")
    return BoundedRevisedSimplexSolver(options).solve(problem)


def _solve_dual(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.simplex.dual import DualSimplexSolver

    _reject_device("dual", device)
    return DualSimplexSolver(options).solve(problem, initial_basis_hint=initial_basis)


def _solve_gpu_revised(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.core.gpu_revised_simplex import GpuRevisedSimplex

    return GpuRevisedSimplex(options=options, device=device).solve(
        problem, initial_basis_hint=initial_basis
    )


def _solve_gpu_revised_bounded(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.core.gpu_bounded_simplex import GpuBoundedRevisedSimplex
    from repro.errors import SolverError

    if initial_basis is not None:
        raise SolverError("the bounded solvers do not support warm starts yet")
    return GpuBoundedRevisedSimplex(options=options, device=device).solve(problem)


def _solve_gpu_tableau(problem, options, initial_basis=None, device=None) -> SolveResult:
    from repro.errors import SolverError
    from repro.core.gpu_tableau_simplex import GpuTableauSimplex

    if initial_basis is not None:
        raise SolverError("warm starts are supported by the revised solvers only")
    return GpuTableauSimplex(options=options, device=device).solve(problem)


_METHODS: dict[str, Callable[..., SolveResult]] = {
    "tableau": _solve_tableau,
    "revised": _solve_revised,
    "revised-bounded": _solve_revised_bounded,
    "dual": _solve_dual,
    "gpu-revised": _solve_gpu_revised,
    "gpu-revised-bounded": _solve_gpu_revised_bounded,
    "gpu-tableau": _solve_gpu_tableau,
}


def available_methods() -> list[str]:
    """Names accepted by :func:`solve`'s ``method`` argument."""
    return sorted(_METHODS)


def solve(
    problem: LPProblem,
    method: str = "gpu-revised",
    options: SolverOptions | None = None,
    initial_basis=None,
    device=None,
    **option_overrides,
) -> SolveResult:
    """Solve an LP with the chosen method.

    Keyword overrides are applied on top of ``options`` (or the defaults),
    e.g. ``solve(lp, method="revised", pricing="bland", max_iterations=500)``.
    ``initial_basis`` warm-starts the revised solvers from a previous basis
    (take it from ``previous_result.extra["basis"]``).  ``device`` lets a
    ``gpu-*`` solve run on an existing simulated device instead of creating
    its own — the batch layer uses this to share one device across many LPs.
    """
    if not isinstance(problem, LPProblem):
        raise TypeError(f"expected LPProblem, got {type(problem).__name__}")
    try:
        runner = _METHODS[method]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {method!r}; available: {available_methods()}"
        ) from None
    opts = (options or SolverOptions()).replace(**option_overrides)
    return runner(problem, opts, initial_basis, device)


# Batch façade re-exports (the batch layer builds on solve(); importing at
# the bottom keeps the modules cycle-free).
from repro.batch import solve_batch, solve_batch_chain  # noqa: E402

"""Benchmark harness: regenerates every table and figure of the evaluation.

- :mod:`~repro.bench.tables`      — ASCII/CSV rendering of result tables and
  text "figures" (series printed as aligned columns).
- :mod:`~repro.bench.harness`     — sweep runners: solve a workload family
  across sizes/methods and collect modeled times, iteration counts,
  breakdowns and accuracy.
- :mod:`~repro.bench.experiments` — one entry point per experiment
  (T1, T2, T3, F1–F6, A1–A3); each returns a :class:`~repro.bench.tables.Report`
  whose ``render()`` is the regenerated table/figure.

Run any experiment directly::

    python -m repro.bench.experiments f1
"""

from repro.bench.tables import Report, Table
from repro.bench.harness import SweepRecord, run_method, dense_sweep, speedup_series, find_crossover

__all__ = [
    "Report",
    "Table",
    "SweepRecord",
    "run_method",
    "dense_sweep",
    "speedup_series",
    "find_crossover",
]

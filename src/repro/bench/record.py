"""Persisting experiment reports to disk.

``save_report`` writes one :class:`~repro.bench.tables.Report` as a bundle:
the rendered text, one CSV per table (for plotting elsewhere), and a
Markdown fragment; ``save_all`` runs any subset of the experiment registry
into a directory — the mechanism behind ``python -m repro.bench.experiments
--out DIR`` and the recorded EXPERIMENTS.md numbers.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Sequence

from repro.bench.tables import Report


def _slug(text: str) -> str:
    out = re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-")
    return out or "table"


def report_to_markdown(report: Report) -> str:
    """Render a report as GitHub-flavoured Markdown."""
    lines = [f"## [{report.experiment}] {report.title}", ""]
    for table in report.tables:
        if table.title:
            lines.append(f"**{table.title}**")
            lines.append("")
        lines.append("| " + " | ".join(table.columns) + " |")
        lines.append("|" + "|".join("---" for _ in table.columns) + "|")
        for row in table.rows:
            from repro.bench.tables import _fmt

            lines.append("| " + " | ".join(_fmt(v) for v in row) + " |")
        lines.append("")
    for note in report.notes:
        if "\n" in note:  # ascii series: keep preformatted
            lines.append("```")
            lines.append(note.rstrip())
            lines.append("```")
        else:
            lines.append(f"> {note}")
        lines.append("")
    return "\n".join(lines)


def save_report(report: Report, directory: "str | Path") -> list[Path]:
    """Write <id>.txt, <id>.md and <id>-<table>.csv files; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = report.experiment.lower()
    written: list[Path] = []

    txt = directory / f"{stem}.txt"
    txt.write_text(report.render())
    written.append(txt)

    md = directory / f"{stem}.md"
    md.write_text(report_to_markdown(report))
    written.append(md)

    seen: dict[str, int] = {}
    for i, table in enumerate(report.tables):
        label = _slug(table.title) if table.title else f"table{i}"
        # Untitled tables get distinct labels from their index, but titled
        # tables can collide after slugging ("fp32!" and "fp32?" both become
        # "fp32") — suffix repeats with the table index so every table of
        # the report lands in its own CSV instead of overwriting.
        while label in seen:
            label = f"{label}-{i}"
        seen[label] = i
        csv = directory / f"{stem}-{label}.csv"
        csv.write_text(table.to_csv())
        written.append(csv)
    return written


def save_all(
    directory: "str | Path",
    experiment_ids: Sequence[str] | None = None,
) -> dict[str, list[Path]]:
    """Run experiments (all by default) and persist each; returns the paths
    per experiment id."""
    from repro.bench.experiments import EXPERIMENTS

    ids = sorted(EXPERIMENTS) if experiment_ids is None else [
        e.lower() for e in experiment_ids
    ]
    out: dict[str, list[Path]] = {}
    for exp_id in ids:
        fn = EXPERIMENTS.get(exp_id)
        if fn is None:
            raise KeyError(f"unknown experiment {exp_id!r}")
        out[exp_id] = save_report(fn(), directory)
    return out

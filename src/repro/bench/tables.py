"""Plain-text table and report rendering for the benchmark harness.

Every experiment produces a :class:`Report`: a title, an optional preamble,
one or more :class:`Table` objects and closing notes.  ``render()`` gives the
aligned ASCII form the harness prints (the "figure" of a text environment);
``to_csv()`` gives machine-readable output for plotting elsewhere.
"""

from __future__ import annotations

import dataclasses
import io
from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.4g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


@dataclasses.dataclass
class Table:
    """A column-aligned table."""

    columns: list[str]
    rows: list[list[Any]] = dataclasses.field(default_factory=list)
    title: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        cells = [[_fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[j]), *(len(r[j]) for r in cells)) if cells else len(self.columns[j])
            for j in range(len(self.columns))
        ]
        out = io.StringIO()
        if self.title:
            out.write(self.title + "\n")
        header = "  ".join(c.rjust(w) for c, w in zip(self.columns, widths))
        out.write(header + "\n")
        out.write("  ".join("-" * w for w in widths) + "\n")
        for row in cells:
            out.write("  ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
        return out.getvalue()

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write(",".join(self.columns) + "\n")
        for row in self.rows:
            out.write(",".join(_fmt(v) for v in row) + "\n")
        return out.getvalue()

    def column(self, name: str) -> list[Any]:
        j = self.columns.index(name)
        return [row[j] for row in self.rows]


@dataclasses.dataclass
class Report:
    """A titled collection of tables plus free-text notes."""

    experiment: str
    title: str
    tables: list[Table] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)

    def add_table(self, table: Table) -> Table:
        self.tables.append(table)
        return table

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        out = io.StringIO()
        rule = "=" * max(len(self.title) + 10, 40)
        out.write(f"{rule}\n[{self.experiment}] {self.title}\n{rule}\n")
        for table in self.tables:
            out.write(table.render())
            out.write("\n")
        for note in self.notes:
            out.write(f"note: {note}\n")
        return out.getvalue()


def ascii_series(
    xs: Sequence[float], ys: Sequence[float], width: int = 50, label: str = ""
) -> str:
    """A minimal text plot: one bar per (x, y) point, length ∝ y.

    Used to give figures a visual form in terminal output; the exact values
    are in the accompanying table.
    """
    finite = [y for y in ys if y == y and y != float("inf")]
    top = max(finite) if finite else 1.0
    out = io.StringIO()
    if label:
        out.write(label + "\n")
    for x, y in zip(xs, ys):
        bar = "#" * max(0, int(round(width * (y / top)))) if top > 0 else ""
        out.write(f"{_fmt(x):>10} | {bar} {_fmt(y)}\n")
    return out.getvalue()

"""Sweep runners and series utilities for the benchmark experiments.

The harness solves real instances with real pivots; "time" in the records is
the analytic machine-model time (simulated GPU clock / modeled 2009 CPU), and
``wall_seconds`` is this host's Python time, reported separately by
pytest-benchmark.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.lp.generators import random_dense_lp, random_sparse_lp
from repro.lp.problem import LPProblem
from repro.result import SolveResult
from repro.solve import solve

#: The default size sweep of the paper-shaped figures (m = n).
DEFAULT_SIZES = (64, 128, 256, 384, 512, 768)

#: Default pricing for benchmark runs: Dantzig, as the paper's solver uses.
DEFAULT_PRICING = "dantzig"


@dataclasses.dataclass
class SweepRecord:
    """One (method, instance) cell of a sweep."""

    method: str
    size: int
    m: int
    n: int
    status: str
    objective: float
    iterations: int
    modeled_seconds: float
    transfer_seconds: float
    wall_seconds: float
    per_iteration_us: float
    result: SolveResult
    #: Modeled seconds per solver section (pricing / ftran / ratio / ...).
    #: Populated from the solve's iteration trace when tracing was on,
    #: otherwise from the kernel/op breakdown.
    phase_seconds: dict[str, float] = dataclasses.field(default_factory=dict)

    @classmethod
    def from_result(cls, method: str, lp: LPProblem, result: SolveResult) -> "SweepRecord":
        iters = result.iterations.total_iterations
        if result.trace is not None:
            phase_seconds = result.trace.phase_seconds()
        else:
            phase_seconds = dict(result.timing.kernel_breakdown)
        return cls(
            method=method,
            size=max(lp.num_constraints, lp.num_vars),
            m=lp.num_constraints,
            n=lp.num_vars,
            status=result.status.value,
            objective=result.objective,
            iterations=iters,
            modeled_seconds=result.timing.modeled_seconds,
            transfer_seconds=result.timing.transfer_seconds,
            wall_seconds=result.timing.wall_seconds,
            per_iteration_us=(
                result.timing.modeled_seconds / iters * 1e6 if iters else float("nan")
            ),
            result=result,
            phase_seconds=phase_seconds,
        )


def run_method(lp: LPProblem, method: str, **options) -> SweepRecord:
    """Solve one instance with one method; returns its sweep record."""
    options.setdefault("pricing", DEFAULT_PRICING)
    result = solve(lp, method=method, **options)
    return SweepRecord.from_result(method, lp, result)


def dense_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    methods: Sequence[str] = ("revised", "gpu-revised"),
    seed: int = 42,
    **options,
) -> dict[str, list[SweepRecord]]:
    """The paper's main experiment: square random dense LPs across sizes.

    Returns ``{method: [record per size]}``; every method sees the *same*
    instance at each size.
    """
    out: dict[str, list[SweepRecord]] = {m: [] for m in methods}
    for size in sizes:
        lp = random_dense_lp(size, size, seed=seed)
        for method in methods:
            out[method].append(run_method(lp, method, **options))
    return out


def sparse_sweep(
    sizes: Sequence[int] = DEFAULT_SIZES,
    density: float = 0.05,
    methods: Sequence[str] = ("revised", "gpu-revised"),
    seed: int = 42,
    **options,
) -> dict[str, list[SweepRecord]]:
    """Square random sparse LPs across sizes."""
    out: dict[str, list[SweepRecord]] = {m: [] for m in methods}
    for size in sizes:
        lp = random_sparse_lp(size, size, density=density, seed=seed)
        for method in methods:
            out[method].append(run_method(lp, method, **options))
    return out


def speedup_series(
    baseline: Sequence[SweepRecord], contender: Sequence[SweepRecord]
) -> list[float]:
    """baseline_time / contender_time per size (>1 means contender wins)."""
    if len(baseline) != len(contender):
        raise ValueError("speedup series need equal-length sweeps")
    out = []
    for i, (b, c) in enumerate(zip(baseline, contender)):
        if (b.m, b.n) != (c.m, c.n):
            # Pairing is positional; a size mismatch means the two sweeps
            # covered different instances and the ratio would be garbage.
            raise ValueError(
                f"speedup pair {i} mismatched: baseline {b.method} is "
                f"{b.m}x{b.n} but contender {c.method} is {c.m}x{c.n}"
            )
        out.append(b.modeled_seconds / c.modeled_seconds if c.modeled_seconds else math.nan)
    return out


def find_crossover(sizes: Sequence[int], speedups: Sequence[float]) -> float | None:
    """Interpolated problem size where the speedup crosses 1.0.

    Returns None when the series never crosses (one side wins everywhere).
    """
    for i in range(1, len(speedups)):
        s0, s1 = speedups[i - 1], speedups[i]
        if (s0 - 1.0) * (s1 - 1.0) <= 0.0 and s0 != s1:
            x0, x1 = sizes[i - 1], sizes[i]
            t = (1.0 - s0) / (s1 - s0)
            return float(x0 + t * (x1 - x0))
    return None


def relative_error(measured: float, reference: float) -> float:
    """|measured − reference| / max(1, |reference|)."""
    return abs(measured - reference) / max(1.0, abs(reference))


def scipy_reference(lp: LPProblem) -> float | None:
    """Optimal objective from scipy's HiGHS (independent oracle), in the
    problem's own orientation; None when not optimal."""
    from scipy.optimize import linprog

    from repro.lp.problem import ConstraintSense

    c = -lp.c if lp.maximize else lp.c
    a = lp.a_dense()
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for i, sense in enumerate(lp.senses):
        if sense is ConstraintSense.LE:
            a_ub.append(a[i])
            b_ub.append(lp.b[i])
        elif sense is ConstraintSense.GE:
            a_ub.append(-a[i])
            b_ub.append(-lp.b[i])
        else:
            a_eq.append(a[i])
            b_eq.append(lp.b[i])
    bounds = [
        (lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
        for lo, hi in zip(lp.bounds.lower, lp.bounds.upper)
    ]
    res = linprog(
        c,
        A_ub=np.asarray(a_ub) if a_ub else None,
        b_ub=np.asarray(b_ub) if b_ub else None,
        A_eq=np.asarray(a_eq) if a_eq else None,
        b_eq=np.asarray(b_eq) if b_eq else None,
        bounds=bounds,
        method="highs",
    )
    if res.status != 0:
        return None
    return float(-res.fun if lp.maximize else res.fun)

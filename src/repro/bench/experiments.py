"""One entry point per evaluation experiment (tables T1–T3, figures F1–F10,
ablations A1–A6, beyond-paper batching B1).

Each function runs the experiment and returns a
:class:`~repro.bench.tables.Report`; ``python -m repro.bench.experiments <id>``
prints it.  The benchmarks under ``benchmarks/`` call these same functions,
so the pytest-benchmark targets and the standalone harness share one code
path.  See DESIGN.md for the experiment index and EXPERIMENTS.md for the
recorded paper-vs-measured outcomes.
"""

from __future__ import annotations

import sys
from typing import Sequence

import numpy as np

from repro.bench.harness import (
    DEFAULT_SIZES,
    dense_sweep,
    find_crossover,
    relative_error,
    run_method,
    scipy_reference,
    sparse_sweep,
    speedup_series,
)
from repro.bench.tables import Report, Table, ascii_series
from repro.lp.generators import (
    band_lp,
    degenerate_lp,
    klee_minty_lp,
    netlib_synth_suite,
    random_dense_lp,
    random_sparse_lp,
)
from repro.perfmodel.presets import (
    CORE2_CPU_PARAMS,
    GTX280_PARAMS,
    GTX8800_PARAMS,
    TESLA_C1060_PARAMS,
)
from repro.solve import solve

#: fp32 everywhere the paper's GPU runs fp32; the comparator is modeled at
#: the same precision (single-precision ATLAS).
BENCH_DTYPE = np.float32


# ---------------------------------------------------------------------------
# T1 — device characteristics
# ---------------------------------------------------------------------------


def t1_device_table() -> Report:
    """Device characteristics of the modeled hardware (paper's Table 1)."""
    report = Report("T1", "Modeled hardware characteristics")
    t = report.add_table(
        Table(
            [
                "device", "SMs", "threads", "fp32 GFLOP/s", "fp64 GFLOP/s",
                "mem GB/s", "mem MiB", "launch µs", "PCIe GB/s",
            ]
        )
    )
    for p in (GTX280_PARAMS, GTX8800_PARAMS, TESLA_C1060_PARAMS):
        t.add_row(
            p.name, p.sm_count, p.concurrent_threads, p.peak_flops_fp32 / 1e9,
            p.peak_flops_fp64 / 1e9, p.mem_bandwidth / 1e9,
            p.global_mem_bytes // 1024**2, p.launch_overhead * 1e6,
            p.pcie_bandwidth / 1e9,
        )
    c = report.add_table(
        Table(["cpu", "fp32 GFLOP/s", "fp64 GFLOP/s", "mem GB/s", "cache hit"])
    )
    c.add_row(
        CORE2_CPU_PARAMS.name,
        CORE2_CPU_PARAMS.sustained_flops_fp32 / 1e9,
        CORE2_CPU_PARAMS.sustained_flops_fp64 / 1e9,
        CORE2_CPU_PARAMS.mem_bandwidth / 1e9,
        CORE2_CPU_PARAMS.cache_hit_fraction,
    )
    report.add_note("All rates are datasheet peaks; sustained efficiency factors live in repro.perfmodel.presets.")
    return report


# ---------------------------------------------------------------------------
# T2 — correctness across the synthetic NETLIB-like suite
# ---------------------------------------------------------------------------


def t2_correctness(
    methods: Sequence[str] = (
        "tableau", "revised", "revised-bounded",
        "gpu-revised", "gpu-revised-bounded", "gpu-tableau",
    ),
) -> Report:
    """Objective agreement with the independent scipy/HiGHS oracle."""
    report = Report("T2", "Correctness on the synthetic NETLIB-like suite")
    cols = ["problem", "m", "n", "%nnz", "reference"]
    for method in methods:
        cols += [f"{method}", f"{method} relerr"]
    t = report.add_table(Table(cols))
    worst = 0.0
    for lp in netlib_synth_suite():
        ref = scipy_reference(lp)
        a = lp.a_dense()
        pct = 100.0 * np.count_nonzero(a) / a.size
        row: list = [lp.name, lp.num_constraints, lp.num_vars, pct,
                     ref if ref is not None else "-"]
        for method in methods:
            r = solve(lp, method=method, pricing="hybrid")
            if r.is_optimal and ref is not None:
                err = relative_error(r.objective, ref)
                worst = max(worst, err)
                row += [r.objective, err]
            else:
                row += [r.status.value, "-"]
        t.add_row(*row)
    report.add_note(f"worst relative objective error across suite: {worst:.3e}")
    return report


# ---------------------------------------------------------------------------
# F1/F2 — solve time vs size, speedup and crossover (the headline result)
# ---------------------------------------------------------------------------


def f1_time_vs_size(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 42) -> Report:
    """Solve time vs problem size: sequential CPU vs GPU revised simplex."""
    report = Report("F1", "Dense random LPs: solve time vs size (fp32)")
    sweeps = dense_sweep(sizes, methods=("revised", "gpu-revised"), seed=seed,
                         dtype=BENCH_DTYPE)
    t = report.add_table(
        Table(["size", "iters", "cpu ms", "gpu ms", "gpu transfer ms", "cpu us/iter", "gpu us/iter"])
    )
    for rc, rg in zip(sweeps["revised"], sweeps["gpu-revised"]):
        t.add_row(
            rc.size, rg.iterations, rc.modeled_seconds * 1e3, rg.modeled_seconds * 1e3,
            rg.transfer_seconds * 1e3, rc.per_iteration_us, rg.per_iteration_us,
        )
    report.add_note(
        ascii_series(
            [r.size for r in sweeps["gpu-revised"]],
            [r.modeled_seconds * 1e3 for r in sweeps["gpu-revised"]],
            label="gpu time (ms) vs size",
        )
    )
    report.extra_sweeps = sweeps  # type: ignore[attr-defined]
    return report


def f2_speedup(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 42) -> Report:
    """GPU-over-CPU speedup vs problem size, with the crossover point."""
    report = Report("F2", "Dense random LPs: GPU speedup vs size (fp32)")
    sweeps = dense_sweep(sizes, methods=("revised", "gpu-revised"), seed=seed,
                         dtype=BENCH_DTYPE)
    sp = speedup_series(sweeps["revised"], sweeps["gpu-revised"])
    t = report.add_table(Table(["size", "cpu ms", "gpu ms", "speedup"]))
    for rc, rg, s in zip(sweeps["revised"], sweeps["gpu-revised"], sp):
        t.add_row(rc.size, rc.modeled_seconds * 1e3, rg.modeled_seconds * 1e3, s)
    crossover = find_crossover([r.size for r in sweeps["revised"]], sp)
    report.add_note(
        f"crossover (speedup = 1) at size ≈ {crossover:.0f}" if crossover
        else "no crossover within the swept sizes"
    )
    report.add_note(ascii_series(list(sizes), sp, label="speedup vs size"))
    return report


# ---------------------------------------------------------------------------
# F3 — per-iteration kernel breakdown
# ---------------------------------------------------------------------------


def f3_kernel_breakdown(size: int = 512, seed: int = 42) -> Report:
    """Where GPU time goes: algorithm phases and top kernels."""
    report = Report("F3", f"GPU revised simplex kernel breakdown (size {size}, fp32)")
    lp = random_dense_lp(size, size, seed=seed)
    rec = run_method(lp, "gpu-revised", dtype=BENCH_DTYPE)
    sections = rec.result.timing.kernel_breakdown
    total = sum(sections.values())
    t = report.add_table(Table(["phase", "ms", "% of total", "us/iter"]))
    for name in ("pricing", "ftran", "ratio", "update", "transfer"):
        seconds = sections.get(name, 0.0)
        t.add_row(
            name, seconds * 1e3, 100.0 * seconds / total if total else 0.0,
            seconds / max(1, rec.iterations) * 1e6,
        )
    by_kernel = rec.result.extra.get("by_kernel", {})
    k = report.add_table(Table(["kernel", "ms", "% of kernel time"], title="top kernels"))
    ktotal = sum(by_kernel.values())
    for name, seconds in sorted(by_kernel.items(), key=lambda kv: -kv[1])[:10]:
        k.add_row(name, seconds * 1e3, 100.0 * seconds / ktotal if ktotal else 0.0)
    report.add_note(f"iterations: {rec.iterations}; kernel launches: {rec.result.extra.get('kernel_launches')}")
    return report


# ---------------------------------------------------------------------------
# F9 — per-iteration time breakdown from solver traces
# ---------------------------------------------------------------------------


def f9_iteration_breakdown(size: int = 256, seed: int = 42) -> Report:
    """Where each *iteration* spends its time, from :mod:`repro.trace`.

    F3 reports aggregate section totals; this slices the modeled clock per
    pivot: section shares, degeneracy, ratio-test ties and eta-file growth
    between refactorisations, for the CPU and GPU revised solvers on the
    same instance (identical pivot sequences).
    """
    report = Report(
        "F9", f"Per-iteration time breakdown from solver traces (size {size}, fp32)"
    )
    lp = random_dense_lp(size, size, seed=seed)
    t = report.add_table(
        Table(["method", "iters", "us/iter", "pricing %", "solve %", "ratio %",
               "update %", "degenerate", "max ties", "max etas"])
    )
    for method in ("revised", "gpu-revised"):
        rec = run_method(lp, method, dtype=BENCH_DTYPE, trace=True)
        trace = rec.result.trace
        sections = trace.phase_seconds()
        total = sum(sections.values())

        def share(*prefixes):
            hit = sum(
                s for k, s in sections.items()
                if any(k == p or k.startswith(p + ".") for p in prefixes)
            )
            return 100.0 * hit / total if total else 0.0

        t.add_row(
            method, rec.iterations,
            rec.modeled_seconds / max(1, rec.iterations) * 1e6,
            share("pricing"),
            share("ftran", "btran"),          # triangular solves / FTRAN+BTRAN
            share("ratio", "leaving", "row_gen"),
            share("update", "refactor"),
            trace.degenerate_count(),
            max((r.ratio_ties for r in trace), default=0),
            max((r.eta_count for r in trace), default=0),
        )
        if method == "gpu-revised":
            times_us = [r.seconds * 1e6 for r in trace]
            # bucket the series so the plot stays ~40 rows at any size
            step = max(1, len(times_us) // 40)
            xs = list(range(1, len(times_us) + 1, step))
            ys = [
                sum(times_us[i:i + step]) / len(times_us[i:i + step])
                for i in range(0, len(times_us), step)
            ]
            report.add_note(
                ascii_series(
                    xs, ys,
                    label=f"gpu-revised us per iteration "
                          f"(mean of {step}-iteration buckets):",
                )
            )
    report.add_note(
        "Traces are opt-in (SolverOptions.trace); results are bit-identical "
        "with tracing off."
    )
    return report


# ---------------------------------------------------------------------------
# F4 — single vs double precision
# ---------------------------------------------------------------------------


def f4_precision(sizes: Sequence[int] = (64, 128, 256, 512), seed: int = 42) -> Report:
    """fp32 vs fp64 on the GPU: time, iterations and objective accuracy.

    GT200 runs fp64 at 1/12 the fp32 rate, so the paper's solver lives in
    fp32; this experiment quantifies both the cost of fp64 and the accuracy
    price of fp32.
    """
    report = Report("F4", "GPU revised simplex: fp32 vs fp64 vs mixed")
    t = report.add_table(
        Table(["size", "fp32 ms", "fp64 ms", "fp64/fp32", "iters32", "iters64", "fp32 relerr vs oracle"])
    )
    tm = report.add_table(
        Table(["size", "mixed ms", "fp64 ms", "mixed/fp64", "refine steps",
               "mixed relerr vs fp64", "residual"])
    )
    for size in sizes:
        lp = random_dense_lp(size, size, seed=seed)
        ref = scipy_reference(lp)
        r32 = run_method(lp, "gpu-revised", dtype=np.float32)
        r64 = run_method(lp, "gpu-revised", dtype=np.float64)
        err = relative_error(r32.objective, ref) if ref is not None else float("nan")
        t.add_row(
            size, r32.modeled_seconds * 1e3, r64.modeled_seconds * 1e3,
            r64.modeled_seconds / r32.modeled_seconds,
            r32.iterations, r64.iterations, err,
        )
        rmx = run_method(lp, "gpu-revised", precision="mixed")
        tm.add_row(
            size, rmx.modeled_seconds * 1e3, r64.modeled_seconds * 1e3,
            rmx.modeled_seconds / r64.modeled_seconds,
            rmx.result.extra.get("refinement_steps", 0),
            relative_error(rmx.objective, r64.objective),
            rmx.result.extra.get("residual_after_refinement", float("nan")),
        )
    report.add_note("fp64/fp32 < 12 because BLAS-2 kernels are bandwidth-bound (2x bytes), not FLOP-bound.")
    report.add_note(
        "Mixed = fp32 device compute + fp64 iterative refinement of the "
        "final basic solution (precision=\"mixed\"): fp32 pivot speed, "
        "fp64-grade answers after one or two residual corrections."
    )
    return report


# ---------------------------------------------------------------------------
# T3 — iteration counts and per-iteration time
# ---------------------------------------------------------------------------


def t3_iterations(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 42) -> Report:
    """Iteration counts (identical across machines) and per-iteration cost."""
    report = Report("T3", "Iterations and per-iteration time vs size")
    sweeps = dense_sweep(sizes, methods=("revised", "gpu-revised"), seed=seed,
                         dtype=BENCH_DTYPE)
    t = report.add_table(
        Table(["size", "iters cpu", "iters gpu", "cpu us/iter", "gpu us/iter", "objectives agree"])
    )
    for rc, rg in zip(sweeps["revised"], sweeps["gpu-revised"]):
        agree = relative_error(rc.objective, rg.objective) < 1e-4
        t.add_row(rc.size, rc.iterations, rg.iterations,
                  rc.per_iteration_us, rg.per_iteration_us, agree)
    report.add_note("Pivot sequences are deterministic; fp32 round-off can shift late pivots at larger sizes.")
    return report


# ---------------------------------------------------------------------------
# F5 — host/device transfer overhead
# ---------------------------------------------------------------------------


def f5_transfer_overhead(sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 42) -> Report:
    """PCIe transfer time as a fraction of total GPU solve time."""
    report = Report("F5", "GPU solve: transfer overhead vs size")
    t = report.add_table(
        Table(["size", "total ms", "transfer ms", "transfer %", "htod MiB", "dtoh MiB"])
    )
    for size in sizes:
        lp = random_dense_lp(size, size, seed=seed)
        from repro.core.gpu_revised_simplex import GpuRevisedSimplex
        from repro.simplex.options import SolverOptions

        solver = GpuRevisedSimplex(SolverOptions(dtype=BENCH_DTYPE, pricing="dantzig"))
        result = solver.solve(lp)
        dev = solver.device
        t.add_row(
            size,
            result.timing.modeled_seconds * 1e3,
            result.timing.transfer_seconds * 1e3,
            100.0 * result.timing.transfer_seconds / result.timing.modeled_seconds,
            dev.stats.htod_bytes / 1024**2,
            dev.stats.dtoh_bytes / 1024**2,
        )
    report.add_note(
        "DtoH stays small and latency-bound (per-iteration scalars); HtoD is dominated by the one-time upload of A."
    )
    return report


# ---------------------------------------------------------------------------
# A1 — pricing-rule ablation
# ---------------------------------------------------------------------------


def a1_pricing(seed: int = 42) -> Report:
    """Dantzig vs Bland vs hybrid (plus Devex/steepest-edge on the tableau)."""
    report = Report("A1", "Pricing-rule ablation: iterations and modeled time")
    instances = [
        ("dense-192", random_dense_lp(192, 192, seed=seed)),
        ("degenerate-96", degenerate_lp(96, 128, seed=seed)),
        ("klee-minty-10", klee_minty_lp(10)),
    ]
    t = report.add_table(
        Table(["instance", "rule", "solver", "status", "iters", "ms"])
    )
    for label, lp in instances:
        for rule in ("dantzig", "bland", "hybrid"):
            for method in ("revised", "gpu-revised"):
                rec = run_method(lp, method, pricing=rule, dtype=BENCH_DTYPE)
                t.add_row(label, rule, method, rec.status, rec.iterations,
                          rec.modeled_seconds * 1e3)
        for rule in ("devex", "steepest-edge"):
            rec = run_method(lp, "tableau", pricing=rule, dtype=BENCH_DTYPE)
            t.add_row(label, rule, "tableau", rec.status, rec.iterations,
                      rec.modeled_seconds * 1e3)
    report.add_note("Bland trades iterations for a termination guarantee; Klee-Minty punishes Dantzig by design.")
    return report


# ---------------------------------------------------------------------------
# A2 — basis-update ablation
# ---------------------------------------------------------------------------


def a2_basis_update(size: int = 256, seed: int = 42) -> Report:
    """Explicit inverse vs product-form eta file across refactor periods."""
    report = Report("A2", f"Basis-update ablation (revised CPU, size {size})")
    lp = random_dense_lp(size, size, seed=seed)
    t = report.add_table(
        Table(["basis update", "refactor period", "status", "iters", "refactors", "ms"])
    )
    for update in ("explicit", "pfi"):
        for period in (0, 25, 100):
            rec = run_method(
                lp, "revised", basis_update=update, refactor_period=period,
                dtype=BENCH_DTYPE,
            )
            t.add_row(update, period or "off", rec.status, rec.iterations,
                      rec.result.iterations.refactorizations,
                      rec.modeled_seconds * 1e3)
    report.add_note("PFI pays per-eta FTRAN/BTRAN cost that grows between refactorisations; explicit pays a full GER per pivot.")
    return report


# ---------------------------------------------------------------------------
# A3 — tableau vs revised on the GPU
# ---------------------------------------------------------------------------


def a3_tableau_vs_revised(sizes: Sequence[int] = (64, 128, 256, 384), seed: int = 42) -> Report:
    """The two GPU formulations head to head, dense and sparse."""
    report = Report("A3", "GPU tableau vs GPU revised simplex")
    t = report.add_table(
        Table(["instance", "method", "status", "iters", "ms", "us/iter", "MiB/iter"])
    )
    for size in sizes:
        lp = random_dense_lp(size, size, seed=seed)
        for method in ("gpu-tableau", "gpu-revised"):
            rec = run_method(lp, method, dtype=BENCH_DTYPE)
            t.add_row(f"dense-{size}", method, rec.status, rec.iterations,
                      rec.modeled_seconds * 1e3, rec.per_iteration_us,
                      rec.result.extra["kernel_bytes"] / max(1, rec.iterations) / 1024**2)
    lp = random_sparse_lp(128, 2048, density=0.01, seed=seed)
    traffic: dict[str, float] = {}
    for method in ("gpu-tableau", "gpu-revised"):
        rec = run_method(lp, method, dtype=BENCH_DTYPE)
        per_iter_bytes = rec.result.extra["kernel_bytes"] / max(1, rec.iterations)
        traffic[method] = per_iter_bytes
        t.add_row("sparse-128x2048", method, rec.status, rec.iterations,
                  rec.modeled_seconds * 1e3, rec.per_iteration_us,
                  per_iter_bytes / 1024**2)
    report.extra_traffic = traffic  # type: ignore[attr-defined]
    report.add_note(
        "Both formulations are launch/latency-bound at these sizes; the revised "
        "method's structural advantage shows in per-iteration memory traffic "
        "(m² + nnz vs m·n), which governs at paper-scale sizes."
    )
    return report


# ---------------------------------------------------------------------------
# F6 — sparse instances
# ---------------------------------------------------------------------------


def f6_sparse(sizes: Sequence[int] = (128, 256, 384, 512), density: float = 0.03,
              seed: int = 42,
              crossover_sizes: Sequence[int] = (256, 512, 640)) -> Report:
    """Sparse LPs: dense vs end-to-end sparse backends, and the crossover.

    Table 1 sweeps random sparse instances over all four revised backends
    (dense/sparse × CPU/GPU).  Table 2 is the dense-vs-sparse **GPU
    crossover**: banded instances (density ≲3%) where the sparse LU factors
    stay sparse — beyond m ≈ 500 the dense backend's m² FTRAN/BTRAN/update
    kernels cost more than the sparse backend's nnz-proportional solves.
    """
    report = Report("F6", f"Sparse LPs (density {density}): dense vs sparse backends")
    t = report.add_table(
        Table(["size", "nnz", "iters", "cpu ms", "gpu ms", "speedup",
               "cpu-sp ms", "gpu-sp ms"])
    )
    for size in sizes:
        lp = random_sparse_lp(size, size, density=density, seed=seed)
        rc = run_method(lp, "revised", dtype=BENCH_DTYPE)
        rg = run_method(lp, "gpu-revised", dtype=BENCH_DTYPE)
        rcs = run_method(lp, "revised-sparse", dtype=BENCH_DTYPE)
        rgs = run_method(lp, "gpu-revised-sparse", dtype=BENCH_DTYPE)
        t.add_row(
            size, lp.a.nnz, rg.iterations, rc.modeled_seconds * 1e3,
            rg.modeled_seconds * 1e3,
            rc.modeled_seconds / rg.modeled_seconds if rg.modeled_seconds else float("nan"),
            rcs.modeled_seconds * 1e3, rgs.modeled_seconds * 1e3,
        )
    tx = report.add_table(
        Table(["band size", "density %", "iters", "gpu ms", "gpu-sp ms",
               "sparse speedup"])
    )
    for size in crossover_sizes:
        lp = band_lp(size, bandwidth=8, seed=seed)
        m, n = lp.a.shape
        rg = run_method(lp, "gpu-revised", dtype=BENCH_DTYPE)
        rgs = run_method(lp, "gpu-revised-sparse", dtype=BENCH_DTYPE)
        tx.add_row(
            size, 100.0 * lp.a.nnz / (m * n), rgs.iterations,
            rg.modeled_seconds * 1e3, rgs.modeled_seconds * 1e3,
            rg.modeled_seconds / rgs.modeled_seconds if rgs.modeled_seconds else float("nan"),
        )
    report.add_note(
        "Pricing cost drops from O(mn) to O(nnz) on both machines; on the "
        "GPU both backends price via one SpMVᵀ launch, so the crossover is "
        "decided by the basis solves: dense B⁻¹ GEMV/GER kernels scale with "
        "m² while sparse LU FTRAN/BTRAN scale with nnz(LU)+nnz(etas) — at "
        "≤5% density the sparse backend wins from m ≈ 500 up."
    )
    return report


# ---------------------------------------------------------------------------
# F7 — GPU generations
# ---------------------------------------------------------------------------


def f7_device_generations(sizes: Sequence[int] = (128, 256, 384), seed: int = 42) -> Report:
    """The same solver on G80 (2006), GT200 (2008) and Tesla C1060 —
    how the speedup shifts across the hardware the paper's era offered."""
    from repro.core.gpu_revised_simplex import GpuRevisedSimplex
    from repro.simplex.options import SolverOptions

    report = Report("F7", "GPU revised simplex across device generations")
    params_list = (GTX8800_PARAMS, GTX280_PARAMS, TESLA_C1060_PARAMS)
    t = report.add_table(Table(["size"] + [p.name + " ms" for p in params_list]
                               + ["GT200/G80"]))
    for size in sizes:
        lp = random_dense_lp(size, size, seed=seed)
        times = []
        for params in params_list:
            solver = GpuRevisedSimplex(
                SolverOptions(dtype=BENCH_DTYPE, pricing="dantzig"),
                gpu_params=params,
            )
            r = solver.solve(lp)
            times.append(r.timing.modeled_seconds * 1e3)
        t.add_row(size, *times, times[0] / times[1])
    report.add_note("GT200's ~1.6x bandwidth advantage over G80 flows straight into the BLAS-2-bound iteration.")
    return report


# ---------------------------------------------------------------------------
# A4 — scaling ablation
# ---------------------------------------------------------------------------


def a4_scaling(seed: int = 42) -> Report:
    """Geometric-mean scaling on/off on badly-scaled instances."""
    report = Report("A4", "Scaling ablation: badly-conditioned coefficients")
    t = report.add_table(
        Table(["spread", "scale", "status", "iters", "obj relerr vs oracle"])
    )
    rng = np.random.default_rng(seed)
    for exponent in (0, 3, 6):
        base = random_dense_lp(48, 64, seed=seed)
        a = base.a_dense() * np.exp(
            rng.uniform(-exponent, exponent, size=(48, 1)) * np.log(10)
        )
        from repro.lp.problem import Bounds, ConstraintSense, LPProblem
        from repro.lp.scaling import scaling_spread

        lp = LPProblem(
            c=base.c, a=a, senses=[ConstraintSense.LE] * 48,
            b=base.b * np.max(np.abs(a), axis=1) / np.max(np.abs(base.a_dense()), axis=1),
            bounds=Bounds.nonnegative(64), maximize=True,
            name=f"spread-1e{2 * exponent}",
        )
        ref = scipy_reference(lp)
        for scale in (False, True):
            rec = run_method(lp, "gpu-revised", dtype=BENCH_DTYPE, scale=scale)
            err = (relative_error(rec.objective, ref)
                   if (ref is not None and rec.status == "optimal") else float("nan"))
            t.add_row(f"{scaling_spread(lp.a):.1e}", scale, rec.status,
                      rec.iterations, err)
    report.add_note("fp32 pivoting needs scaling once coefficient spread approaches 1/eps(fp32) ~ 1e7.")
    return report


# ---------------------------------------------------------------------------
# F8 — basis-inverse fill-in over iterations
# ---------------------------------------------------------------------------


def f8_binv_fill(size: int = 256, density: float = 0.03, seed: int = 42) -> Report:
    """Fraction of non-negligible B⁻¹ entries as pivots accumulate.

    B⁻¹ starts as the identity (1/m dense) and fills under rank-1 updates.
    This is the phenomenon that sinks sparse-B⁻¹ storage schemes (the
    thesis's central performance problem) and justifies the paper's choice
    of *dense* device-resident B⁻¹: the measured curve shows how quickly
    "sparse" stops being sparse.
    """
    from repro.core.gpu_revised_simplex import GpuRevisedSimplex
    from repro.simplex.options import SolverOptions

    report = Report("F8", f"B⁻¹ fill-in over iterations (sparse {size}, density {density})")
    lp = random_sparse_lp(size, size, density=density, seed=seed)
    solver = GpuRevisedSimplex(
        SolverOptions(dtype=BENCH_DTYPE, pricing="dantzig"),
        fill_stats_every=10,
    )
    result = solver.solve(lp)
    t = report.add_table(Table(["iteration", "B⁻¹ fill %"]))
    curve = result.extra.get("binv_fill", [])
    for it, frac in curve:
        t.add_row(it, 100.0 * frac)
    start = 100.0 / size  # identity density
    end = 100.0 * curve[-1][1] if curve else float("nan")
    report.add_note(
        f"identity starts at {start:.2f}% dense; after "
        f"{result.iterations.total_iterations} pivots B⁻¹ is {end:.1f}% dense — "
        "sparse storage of B⁻¹ would have degenerated to dense-with-overhead."
    )
    return report


# ---------------------------------------------------------------------------
# F10 — simplex vs first-order (PDLP) modeled-time crossover
# ---------------------------------------------------------------------------


def f10_firstorder_crossover(
    sizes: Sequence[int] = (128, 192, 256, 320, 384),
    density: float = 0.02,
    seed: int = 42,
) -> Report:
    """Modeled-time crossover between ``gpu-revised-sparse`` and ``gpu-pdlp``.

    First-order iterations cost two SpMVs; simplex iterations cost a basis
    solve whose factors fill in as pivots accumulate (F8).  On large sparse
    instances the per-iteration gap overwhelms PDHG's larger iteration
    count and the first-order method wins — this sweep measures where.
    The interpolated crossover (in m+n) is what ``solve(method="auto")``
    uses to dispatch between the two families.
    """
    report = Report(
        "F10",
        f"Simplex vs first-order crossover (sparse, density {density})",
    )
    t = report.add_table(
        Table([
            "m", "n", "method", "status", "iters", "modeled ms",
            "objectives agree", "speedup (simplex/pdlp)",
        ])
    )
    simplex_recs: list = []
    pdlp_recs: list = []
    for size in sizes:
        lp = random_sparse_lp(size, int(1.5 * size), density=density, seed=seed)
        rs = run_method(lp, "gpu-revised-sparse", dtype=BENCH_DTYPE)
        rp = run_method(lp, "gpu-pdlp", dtype=BENCH_DTYPE)
        simplex_recs.append(rs)
        pdlp_recs.append(rp)
        agree = relative_error(rs.objective, rp.objective) < 1e-3
        ratio = (
            rs.modeled_seconds / rp.modeled_seconds
            if rp.modeled_seconds > 0 else float("nan")
        )
        t.add_row(rs.m, rs.n, "gpu-revised-sparse", rs.status, rs.iterations,
                  rs.modeled_seconds * 1e3, agree, "")
        t.add_row(rp.m, rp.n, "gpu-pdlp", rp.status, rp.iterations,
                  rp.modeled_seconds * 1e3, agree, ratio)
    speedups = speedup_series(simplex_recs, pdlp_recs)
    report.add_note(ascii_series(
        [r.m + r.n for r in pdlp_recs], speedups,
        label="gpu-pdlp speedup vs m+n",
    ))
    crossover = find_crossover([r.m + r.n for r in pdlp_recs], speedups)
    if crossover is None:
        report.add_note("no crossover inside the sweep — one method wins everywhere.")
    else:
        report.add_note(
            f"gpu-pdlp overtakes gpu-revised-sparse at m+n ≈ {crossover:.0f} "
            "on this density; solve(method=\"auto\") dispatches sparse "
            "problems past that size to the first-order backend."
        )
    return report


# ---------------------------------------------------------------------------
# A5 — bounded-variable simplex vs bounds-as-rows
# ---------------------------------------------------------------------------


def a5_bounded_variables(sizes: Sequence[int] = (32, 64, 128), seed: int = 42) -> Report:
    """Native upper-bound handling vs the classical bounds-as-rows encoding.

    Every variable gets a finite box, so bounds-as-rows doubles the row
    count (basis m+n instead of m) while the bounded solver pays only extra
    ratio-test cases and occasional O(m) bound flips.
    """
    from repro.lp.problem import Bounds, LPProblem

    report = Report("A5", "Bounded-variable simplex vs bounds-as-rows")
    t = report.add_table(
        Table(["size", "method", "basis m", "iters", "flips", "ms", "objectives agree"])
    )
    rng = np.random.default_rng(seed)
    for size in sizes:
        base = random_dense_lp(size, size, seed=seed)
        lp = LPProblem(
            c=base.c, a=base.a_dense(), senses=base.senses, b=base.b,
            bounds=Bounds(np.zeros(size), rng.uniform(0.3, 2.0, size)),
            maximize=True, name=f"boxed-{size}",
        )
        r_rows = run_method(lp, "revised", dtype=np.float64)
        r_bnd = run_method(lp, "revised-bounded", dtype=np.float64)
        g_rows = run_method(lp, "gpu-revised", dtype=np.float64)
        g_bnd = run_method(lp, "gpu-revised-bounded", dtype=np.float64)
        agree = (
            relative_error(r_rows.objective, r_bnd.objective) < 1e-6
            and relative_error(g_rows.objective, g_bnd.objective) < 1e-6
        )
        t.add_row(size, "revised (rows)", r_rows.result.extra["basis"].size,
                  r_rows.iterations, "-", r_rows.modeled_seconds * 1e3, agree)
        t.add_row(size, "revised-bounded", r_bnd.result.extra["basis"].size,
                  r_bnd.iterations, r_bnd.result.extra["bound_flips"],
                  r_bnd.modeled_seconds * 1e3, agree)
        t.add_row(size, "gpu-revised (rows)", g_rows.result.extra["basis"].size,
                  g_rows.iterations, "-", g_rows.modeled_seconds * 1e3, agree)
        t.add_row(size, "gpu-revised-bounded", g_bnd.result.extra["basis"].size,
                  g_bnd.iterations, g_bnd.result.extra["bound_flips"],
                  g_bnd.modeled_seconds * 1e3, agree)
    report.add_note("Bounds-as-rows squares the basis work in m+n; native bounds keep the basis at m and replace many pivots by O(m) flips.")
    return report


# ---------------------------------------------------------------------------
# A6 — warm re-optimisation after an rhs change
# ---------------------------------------------------------------------------


def a6_reoptimisation(size: int = 96, n_scenarios: int = 6, seed: int = 42) -> Report:
    """Re-solving after rhs perturbations: cold primal vs warm primal vs
    warm dual simplex.

    The planning workflow the dual simplex exists for: one base solve, then
    a stream of scenarios differing only in b.  The previous optimal basis
    is dual feasible for every scenario, so the dual simplex re-optimises
    in a handful of pivots.
    """
    from repro.lp.problem import LPProblem

    report = Report("A6", f"Re-optimisation after rhs changes ({n_scenarios} scenarios, size {size})")
    rng = np.random.default_rng(seed)
    lp = random_dense_lp(size, size, seed=seed)
    base = solve(lp, method="revised")
    basis = base.extra["basis"]

    t = report.add_table(
        Table(["scenario", "cold primal iters", "warm primal iters",
               "warm dual iters", "all agree"])
    )
    totals = {"cold": 0, "warm": 0, "dual": 0}
    for s in range(n_scenarios):
        factors = rng.uniform(0.85, 1.15, size)
        lp_s = LPProblem(c=lp.c, a=lp.a_dense(), senses=lp.senses,
                         b=lp.b * factors, bounds=lp.bounds,
                         maximize=lp.maximize)
        cold = solve(lp_s, method="revised")
        warm = solve(lp_s, method="revised", initial_basis=basis)
        dual = solve(lp_s, method="dual", initial_basis=basis)
        agree = (
            relative_error(cold.objective, warm.objective) < 1e-6
            and relative_error(cold.objective, dual.objective) < 1e-6
        )
        t.add_row(s, cold.iterations.total_iterations,
                  warm.iterations.total_iterations,
                  dual.iterations.total_iterations, agree)
        totals["cold"] += cold.iterations.total_iterations
        totals["warm"] += warm.iterations.total_iterations
        totals["dual"] += dual.iterations.total_iterations
    report.add_note(
        f"total pivots over {n_scenarios} scenarios: cold {totals['cold']}, "
        f"warm primal {totals['warm']}, warm dual {totals['dual']}"
    )
    return report


# ---------------------------------------------------------------------------
# B1 — batched-LP throughput (beyond the paper; reconstructed)
# ---------------------------------------------------------------------------


def b1_batch_throughput(
    batch_sizes: Sequence[int] = (2, 4, 8, 16, 32),
    size: int = 64,
    seed: int = 42,
) -> Report:
    """Throughput (LPs/s of modeled machine time) of batched solving.

    Compares, per batch size B: a loop of B independent solo solves (each
    paying the one-time context setup), the batch under the sequential
    schedule (context paid once), and the batch under the concurrent
    schedule (stream-interleaved kernel launches).  The direction of
    Gurung & Ray (arXiv:1802.08557, arXiv:1609.08114): many small LPs
    cannot individually fill a GPU, so solving them together is where the
    hardware pays off.  *Reconstructed* — the source paper solves one LP
    at a time.
    """
    from repro.batch import DEFAULT_CONTEXT_SETUP_SECONDS, solve_batch

    report = Report("B1", "Batched LP throughput vs batch size")
    t = report.add_table(
        Table(
            [
                "batch", "solo loop ms", "batch seq ms", "batch conc ms",
                "conc speedup", "solo LPs/s", "conc LPs/s", "binding",
            ]
        )
    )
    for b in batch_sizes:
        problems = [
            random_dense_lp(size, size + size // 2, seed=seed + i)
            for i in range(b)
        ]
        solo = sum(
            solve(p, method="gpu-revised", dtype=BENCH_DTYPE).timing.modeled_seconds
            + DEFAULT_CONTEXT_SETUP_SECONDS
            for p in problems
        )
        seq = solve_batch(
            problems, method="gpu-revised", schedule="sequential",
            dtype=BENCH_DTYPE,
        )
        conc = solve_batch(
            problems, method="gpu-revised", schedule="concurrent",
            dtype=BENCH_DTYPE,
        )
        t.add_row(
            b,
            solo * 1e3,
            seq.modeled_seconds * 1e3,
            conc.modeled_seconds * 1e3,
            seq.modeled_seconds / conc.modeled_seconds,
            b / solo,
            conc.throughput_lps,
            conc.outcome.binding_resource,
        )
    report.add_note(
        f"size {size}x{size + size // 2} dense LPs, fp32 GPU; context setup "
        f"{DEFAULT_CONTEXT_SETUP_SECONDS * 1e3:.0f}ms charged per solve "
        "(solo) vs per batch."
    )
    report.add_note(
        "Reconstructed experiment (not in the source paper); batched-LP "
        "design follows arXiv:1802.08557 and arXiv:1609.08114."
    )
    return report


def m1_metrics_snapshot() -> Report:
    """M1: the metrics layer observing the canonical smoke workload.

    Runs :func:`repro.metrics.workloads.smoke_workload` under an enabled
    registry and tabulates the per-solver telemetry the registry collected
    — the same snapshot ``make metrics-smoke`` exports and ``make gate``
    checks against the committed baseline.  *Reconstructed* — observability
    tooling, not a figure from the source paper.
    """
    from repro import metrics
    from repro.metrics.workloads import smoke_workload

    with metrics.collecting() as reg:
        smoke_workload()
        snap = reg.snapshot()

    report = Report("M1", "Metrics registry snapshot of the smoke workload")

    t = report.add_table(
        Table(["solver", "solves", "iterations", "degenerate",
               "refactor", "modeled ms"])
    )
    solves = snap["metrics"]["repro_solves_total"]["series"]
    by_solver: dict[str, float] = {}
    for entry in solves:
        by_solver.setdefault(entry["labels"]["solver"], 0.0)
        by_solver[entry["labels"]["solver"]] += entry["value"]

    def _total(name: str, solver: str) -> float:
        metric = snap["metrics"].get(name)
        if metric is None:
            return 0.0
        return sum(
            e["value"] for e in metric["series"]
            if e["labels"].get("solver") == solver
        )

    for solver in sorted(by_solver):
        t.add_row(
            solver,
            int(by_solver[solver]),
            int(_total("repro_solver_iterations_total", solver)),
            int(_total("repro_solver_degenerate_pivots_total", solver)),
            int(_total("repro_solver_refactorizations_total", solver)),
            _total("repro_solver_modeled_seconds_total", solver) * 1e3,
        )

    g = report.add_table(Table(["gpu metric", "value"]))
    kernel_launches = snap["metrics"].get("repro_gpu_kernel_launches_total")
    g.add_row(
        "kernel launches",
        int(sum(e["value"] for e in kernel_launches["series"]))
        if kernel_launches else 0,
    )
    for label, name, scale in (
        ("kernel seconds (ms)", "repro_gpu_kernel_seconds_total", 1e3),
        ("transfer bytes", "repro_gpu_transfer_bytes_total", 1.0),
        ("peak bytes in use", "repro_gpu_peak_bytes_in_use", 1.0),
    ):
        metric = snap["metrics"].get(name)
        g.add_row(
            label,
            sum(e["value"] for e in metric["series"]) * scale
            if metric else 0.0,
        )

    report.add_note(
        "Snapshot of the deterministic smoke workload (the baseline under "
        "benchmarks/baselines/metrics-smoke.json gates exactly these "
        "numbers).  Collection is opt-in and non-perturbing: solver "
        "results are bit-identical with the registry on or off."
    )
    report.add_note(
        "Reconstructed experiment (observability layer; not a figure from "
        "the source paper)."
    )
    return report


def s1_serving_fleet(
    n_jobs: int = 32, seed: int = 0, fleet_sizes: Sequence[int] = (1, 2, 4)
) -> Report:
    """S1: serving-layer fleet scaling on the canonical arrival trace.

    Replays the same 32-LP mixed-priority synthetic trace (with perturbed
    resubmissions) through ``repro.serve`` fleets of 1, 2 and 4 devices and
    compares modeled span, latency quantiles, utilization and warm-start
    hit rate against the 1-device 1-stream *sequential* baseline — the
    serving analogue of B1's single-batch throughput question.
    *Reconstructed* — the source paper solves one LP at a time; this probes
    the thesis at service scale.
    """
    from repro.serve import ServeConfig, serve_trace, synthetic_trace

    trace = synthetic_trace(n_jobs=n_jobs, seed=seed)
    report = Report(
        "S1",
        f"Serving fleet scaling on a {n_jobs}-job mixed-priority trace",
    )
    t = report.add_table(
        Table(["fleet", "served", "span ms", "speedup", "p50 ms",
               "p95 ms", "p99 ms", "mean util %", "cache hits"])
    )

    baseline = serve_trace(
        trace, ServeConfig(n_devices=1, n_streams=1, cache_capacity=1)
    )
    rows = [("1 dev, sequential", baseline)]
    for n_devices in fleet_sizes:
        rows.append(
            (
                f"{n_devices} dev x4 streams",
                serve_trace(trace, ServeConfig(n_devices=n_devices)),
            )
        )
    for label, rep in rows:
        utils = rep.device_utilization().values()
        t.add_row(
            label,
            f"{len(rep.completed)}/{len(rep.jobs)}",
            rep.span_seconds * 1e3,
            baseline.span_seconds / rep.span_seconds
            if rep.span_seconds > 0 else 1.0,
            rep.latency_quantile(0.5) * 1e3,
            rep.latency_quantile(0.95) * 1e3,
            rep.latency_quantile(0.99) * 1e3,
            100.0 * sum(utils) / len(utils) if utils else 0.0,
            rep.cache_hits,
        )

    report.add_note(
        "Same trace, same solves: every fleet admits and completes the "
        "identical 32 LPs; only placement and overlap differ.  Speedup is "
        "modeled span vs the 1-device 1-stream sequential baseline "
        "(its cache is capacity-1, so warm starts barely help it)."
    )
    report.add_note(
        "Spans stay arrival-bound at small fleets: the trace's mean "
        "interarrival gap (2ms) is of the order of one solve, so speedup "
        "comes from absorbing bursts, not from raw throughput."
    )
    report.add_note(
        "Reconstructed experiment (serving layer; not a figure from the "
        "source paper)."
    )
    return report


def o1_attribution(
    n_jobs: int = 32,
    seed: int = 0,
    fleet_sizes: Sequence[int] = (1, 2, 4),
    sweep_sizes: Sequence[int] = (32, 64, 128, 256),
) -> Report:
    """O1: modeled-time attribution ("explain") of served traffic.

    Replays the S1 arrival trace through fleets of 1/2/4 devices with the
    ``repro.obs`` span recorder on and decomposes total completed-job
    latency into the six attribution buckets (queue-wait / placement /
    transfer / launch-overhead / refactorization / compute).  A second
    sweep serves one F-family dense LP at a time per size, isolating how
    the launch-overhead and transfer shares scale with problem size — the
    calibration ROADMAP item 4 (kernel fusion, batched BLAS) needs.
    *Reconstructed* — the paper reports kernel breakdowns (F3/F9); this
    extends them to request-level buckets on the serving path.
    """
    from repro.lp.generators import random_dense_lp
    from repro.obs import observing
    from repro.serve import ServeConfig, serve_trace, synthetic_trace
    from repro.serve.traces import TraceEntry

    report = Report(
        "O1", f"Latency attribution of the {n_jobs}-job serving trace"
    )

    trace = synthetic_trace(n_jobs=n_jobs, seed=seed)
    t = report.add_table(
        Table(["fleet", "jobs", "latency ms", "queue %", "placement %",
               "transfer %", "launch %", "refactor %", "compute %"])
    )
    for n_devices in fleet_sizes:
        with observing():
            rep = serve_trace(trace, ServeConfig(n_devices=n_devices))
        attr = rep.attribution()
        totals = attr.totals()
        grand = attr.total_latency()
        shares = {
            b: 100.0 * totals[b] / grand if grand > 0 else 0.0
            for b in totals
        }
        t.add_row(
            f"{n_devices} dev x4 streams",
            len(attr.jobs),
            grand * 1e3,
            shares["queue_wait"],
            shares["placement"],
            shares["transfer"],
            shares["launch_overhead"],
            shares["refactorization"],
            shares["compute"],
        )

    ts = report.add_table(
        Table(["size", "latency ms", "kernels", "transfer %", "launch %",
               "refactor %", "compute %"])
    )
    for size in sweep_sizes:
        lp = random_dense_lp(size, size * 2, seed=seed + size)
        solo = [TraceEntry(problem=lp, at=0.0)]
        with observing():
            rep = serve_trace(solo, ServeConfig(n_devices=1, n_streams=1))
        attr = rep.attribution()
        job = attr.jobs[0]
        lat = job.latency_seconds
        execute = rep.obs_recording.tree(job.trace_id)
        kernels = 0
        for node in execute.children:
            if node.span.name == "device.execute":
                kernels = int(node.span.attrs.get("n_kernels", 0))
        ts.add_row(
            size,
            lat * 1e3,
            kernels,
            100.0 * job.buckets["transfer"] / lat,
            100.0 * job.buckets["launch_overhead"] / lat,
            100.0 * job.buckets["refactorization"] / lat,
            100.0 * job.buckets["compute"] / lat,
        )

    # Fusion sweep: the same solo serves with launch-plan fusion on.  This
    # is the payoff measurement for ROADMAP item 4 — how much of the
    # launch-overhead share the plan lowering actually recovers per size.
    tf = report.add_table(
        Table(["size", "kernels", "kernels fused", "launch % unfused",
               "launch % fused", "latency ms", "latency ms fused"])
    )
    for size in sweep_sizes:
        lp = random_dense_lp(size, size * 2, seed=seed + size)
        solo = [TraceEntry(problem=lp, at=0.0)]
        rows = []
        for fusion in (False, True):
            with observing():
                rep = serve_trace(
                    solo,
                    ServeConfig(n_devices=1, n_streams=1, fusion=fusion),
                )
            attr = rep.attribution()
            job = attr.jobs[0]
            execute = rep.obs_recording.tree(job.trace_id)
            kernels = 0
            for node in execute.children:
                if node.span.name == "device.execute":
                    kernels = int(node.span.attrs.get("n_kernels", 0))
            lat = job.latency_seconds
            rows.append(
                (kernels, 100.0 * job.buckets["launch_overhead"] / lat, lat)
            )
        (k0, l0, t0), (k1, l1, t1) = rows
        tf.add_row(size, k0, k1, l0, l1, t0 * 1e3, t1 * 1e3)

    report.add_note(
        "Buckets sum exactly to completed-job latency (telescoping span "
        "identities; see repro.obs.attribution).  Queue-wait dominates the "
        "1-device fleet and collapses as devices are added; the "
        "execute-side mix (transfer / launch / compute) is placement-"
        "invariant up to window stretching."
    )
    report.add_note(
        "The size sweep is the ROADMAP item 4 calibration: launch "
        "overhead's share shrinks as per-kernel work grows with size, "
        "bounding what kernel fusion and batched BLAS can recover at "
        "each scale."
    )
    report.add_note(
        "Reconstructed experiment (observability layer; not a figure "
        "from the source paper)."
    )
    return report


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------

EXPERIMENTS = {
    "t1": t1_device_table,
    "t2": t2_correctness,
    "t3": t3_iterations,
    "f1": f1_time_vs_size,
    "f2": f2_speedup,
    "f3": f3_kernel_breakdown,
    "f4": f4_precision,
    "f5": f5_transfer_overhead,
    "f6": f6_sparse,
    "f7": f7_device_generations,
    "f8": f8_binv_fill,
    "f9": f9_iteration_breakdown,
    "f10": f10_firstorder_crossover,
    "a1": a1_pricing,
    "a2": a2_basis_update,
    "a3": a3_tableau_vs_revised,
    "a4": a4_scaling,
    "a5": a5_bounded_variables,
    "a6": a6_reoptimisation,
    "b1": b1_batch_throughput,
    "m1": m1_metrics_snapshot,
    "s1": s1_serving_fleet,
    "o1": o1_attribution,
}


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.bench.experiments <id>|all [--out DIR]")
        print("experiments:", ", ".join(sorted(EXPERIMENTS)))
        return 0
    out_dir = None
    if "--out" in argv:
        i = argv.index("--out")
        try:
            out_dir = argv[i + 1]
        except IndexError:
            print("--out needs a directory", file=sys.stderr)
            return 2
        del argv[i:i + 2]
    ids = sorted(EXPERIMENTS) if argv and argv[0] == "all" else argv
    for exp_id in ids:
        fn = EXPERIMENTS.get(exp_id.lower())
        if fn is None:
            print(f"unknown experiment {exp_id!r}", file=sys.stderr)
            return 2
        report = fn()
        print(report.render())
        if out_dir is not None:
            from repro.bench.record import save_report

            for path in save_report(report, out_dir):
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

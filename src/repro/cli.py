"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve an MPS file with any method and print the result
``batch``     solve many MPS files (or generated LPs) as one batch
``trace``     solve with per-iteration tracing; print the convergence summary
              and optionally write a merged Chrome-trace JSON
``metrics``   run a workload with metrics collection and export the snapshot
              (Prometheus text or JSON), optionally gated against a baseline
``info``      print structural statistics of an MPS file
``generate``  write a random dense/sparse instance to MPS
``bench``     run one of the evaluation experiments (T1–T3, F1–F10, A1–A6,
              B1, M1, S1)
``serve``     replay a synthetic arrival trace through the serving layer
              (``repro.serve``): fleet, admission queue, warm-start cache
``devices``   print the modeled hardware table

Examples::

    python -m repro generate dense 64 64 --out /tmp/d64.mps
    python -m repro solve /tmp/d64.mps --method gpu-revised --dtype float32
    python -m repro batch a.mps b.mps c.mps --schedule concurrent
    python -m repro batch --random 16 --rows 48 --cols 64 --chain --method revised
    python -m repro trace /tmp/d64.mps --method gpu-revised --out /tmp/d64.json
    python -m repro metrics --format prometheus
    python -m repro metrics --format json --out /tmp/metrics.json
    python -m repro metrics --gate benchmarks/baselines/metrics-smoke.json
    python -m repro info /tmp/d64.mps
    python -m repro bench f2
    python -m repro serve --jobs 32 --devices 4 --jobs-table
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro._version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GPU revised simplex LP solver (IPDPS 2009 reproduction)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve an MPS file")
    p_solve.add_argument("path", help="MPS file to solve")
    p_solve.add_argument("--method", default="gpu-revised",
                         help="auto | tableau | revised | revised-sparse | "
                              "gpu-revised | gpu-revised-sparse | gpu-tableau "
                              "| pdlp | gpu-pdlp")
    p_solve.add_argument("--pricing", default="dantzig",
                         help="dantzig | bland | hybrid | devex | steepest-edge")
    p_solve.add_argument("--dtype", default="float64",
                         choices=["float32", "float64"])
    p_solve.add_argument("--scale", action="store_true",
                         help="apply geometric-mean scaling")
    p_solve.add_argument("--fusion", action="store_true",
                         help="lower gpu-* launch plans with kernel fusion")
    p_solve.add_argument("--precision", default=None,
                         choices=["fp32", "fp64", "mixed"],
                         help="device precision policy (mixed = fp32 compute "
                              "+ fp64 iterative refinement)")
    p_solve.add_argument("--presolve", action="store_true",
                         help="run presolve reductions first")
    p_solve.add_argument("--max-iterations", type=int, default=0)
    p_solve.add_argument("--print-solution", action="store_true",
                         help="print every nonzero variable")

    p_batch = sub.add_parser("batch", help="solve many LPs as one batch")
    p_batch.add_argument("paths", nargs="*", help="MPS files (omit with --random)")
    p_batch.add_argument("--random", type=int, default=0, metavar="N",
                         help="generate N random dense LPs instead of reading files")
    p_batch.add_argument("--rows", type=int, default=64,
                         help="rows of each generated LP (with --random)")
    p_batch.add_argument("--cols", type=int, default=96,
                         help="columns of each generated LP (with --random)")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--method", default="gpu-revised")
    p_batch.add_argument("--schedule", default="concurrent",
                         choices=["sequential", "concurrent"])
    p_batch.add_argument("--streams", type=int, default=0,
                         help="concurrent streams/workers (0 = auto)")
    p_batch.add_argument("--chain", action="store_true",
                         help="warm-start each LP from the previous basis "
                              "(re-optimization stream; implies sequential)")
    p_batch.add_argument("--dtype", default="float64",
                         choices=["float32", "float64"])

    p_trace = sub.add_parser(
        "trace",
        help="solve one LP with per-iteration tracing and summarise it",
    )
    p_trace.add_argument("path", nargs="?", default=None,
                         help="MPS file (omit with --random)")
    p_trace.add_argument("--random", action="store_true",
                         help="trace a generated random dense LP instead")
    p_trace.add_argument("--rows", type=int, default=32,
                         help="rows of the generated LP (with --random)")
    p_trace.add_argument("--cols", type=int, default=48,
                         help="columns of the generated LP (with --random)")
    p_trace.add_argument("--seed", type=int, default=0)
    p_trace.add_argument("--method", default="gpu-revised")
    p_trace.add_argument("--pricing", default="dantzig")
    p_trace.add_argument("--dtype", default="float64",
                         choices=["float32", "float64"])
    p_trace.add_argument("--max-iterations", type=int, default=0)
    p_trace.add_argument("--out", default="",
                         help="write the merged Chrome-trace JSON here")

    p_metrics = sub.add_parser(
        "metrics",
        help="run a workload with metrics collection; export and/or gate it",
    )
    p_metrics.add_argument(
        "paths", nargs="*",
        help="MPS files to solve as the workload (default: the built-in "
             "deterministic smoke workload)",
    )
    p_metrics.add_argument("--random", type=int, default=0, metavar="N",
                           help="solve N generated dense LPs instead of files")
    p_metrics.add_argument("--rows", type=int, default=32,
                           help="rows of each generated LP (with --random)")
    p_metrics.add_argument("--cols", type=int, default=48,
                           help="columns of each generated LP (with --random)")
    p_metrics.add_argument("--seed", type=int, default=0)
    p_metrics.add_argument("--method", default="gpu-revised")
    p_metrics.add_argument("--schedule", default="sequential",
                           choices=["sequential", "concurrent"])
    p_metrics.add_argument("--dtype", default="float64",
                           choices=["float32", "float64"])
    p_metrics.add_argument("--format", default="prometheus",
                           choices=["prometheus", "json"],
                           help="exposition format (default prometheus)")
    p_metrics.add_argument("--out", default="",
                           help="write the export here instead of stdout")
    p_metrics.add_argument("--from-json", default="", metavar="SNAPSHOT",
                           help="load a previously exported JSON snapshot "
                                "instead of running a workload")
    p_metrics.add_argument("--gate", default="", metavar="BASELINE",
                           help="compare the snapshot against this baseline "
                                "JSON; exit nonzero on regression")
    p_metrics.add_argument("--write-baseline", default="", metavar="PATH",
                           help="record the snapshot as a gate baseline")

    p_info = sub.add_parser("info", help="print structural statistics")
    p_info.add_argument("path", help="MPS file to analyse")

    p_gen = sub.add_parser("generate", help="write a random instance to MPS")
    p_gen.add_argument("kind", choices=["dense", "sparse", "transport", "klee-minty"])
    p_gen.add_argument("m", type=int, help="rows (or dimension for klee-minty)")
    p_gen.add_argument("n", type=int, nargs="?", default=None, help="columns")
    p_gen.add_argument("--density", type=float, default=0.05)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True, help="output MPS path")

    p_bench = sub.add_parser("bench", help="run an evaluation experiment")
    p_bench.add_argument("experiment",
                         help="t1..t3 f1..f10 a1..a6 b1 m1 s1 o1 | all")

    p_serve = sub.add_parser(
        "serve",
        help="replay a synthetic arrival trace through the serving layer",
    )
    p_serve.add_argument("--jobs", type=int, default=32,
                         help="trace length (default 32)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--devices", type=int, default=2,
                         help="fleet size (default 2)")
    p_serve.add_argument("--streams", type=int, default=4,
                         help="concurrent streams per device")
    p_serve.add_argument("--method", default="gpu-revised")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission queue bound")
    p_serve.add_argument("--cache", type=int, default=128,
                         help="warm-start cache capacity")
    p_serve.add_argument("--mean-gap", type=float, default=0.002,
                         help="mean interarrival gap in modeled seconds")
    p_serve.add_argument("--jobs-table", action="store_true",
                         help="also print the per-job table")
    p_serve.add_argument("--metrics", action="store_true",
                         help="print the Prometheus metrics exposition too")

    p_explain = sub.add_parser(
        "explain",
        help="replay a trace with span tracing on and attribute modeled time",
    )
    p_explain.add_argument("--jobs", type=int, default=32,
                           help="trace length (default 32)")
    p_explain.add_argument("--seed", type=int, default=0)
    p_explain.add_argument("--devices", type=int, default=2,
                           help="fleet size (default 2)")
    p_explain.add_argument("--streams", type=int, default=4,
                           help="concurrent streams per device")
    p_explain.add_argument("--method", default="gpu-revised")
    p_explain.add_argument("--queue-depth", type=int, default=64,
                           help="admission queue bound")
    p_explain.add_argument("--cache", type=int, default=128,
                           help="warm-start cache capacity")
    p_explain.add_argument("--mean-gap", type=float, default=0.002,
                           help="mean interarrival gap in modeled seconds")
    p_explain.add_argument("--per-job", action="store_true",
                           help="also print the per-job bucket table")
    p_explain.add_argument("--tree", metavar="TRACE_ID",
                           help="print the span tree of one trace "
                                "(e.g. job-3), or 'slowest'")
    p_explain.add_argument("--json-out", metavar="PATH",
                           help="write the span recording as JSON")
    p_explain.add_argument("--chrome-out", metavar="PATH",
                           help="write a Chrome trace of the serve spans")

    sub.add_parser("devices", help="print the modeled hardware table")
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.lp.mps import read_mps
    from repro.lp.presolve import solve_with_presolve
    from repro.solve import solve

    lp = read_mps(args.path)
    kwargs = dict(
        method=args.method,
        pricing=args.pricing,
        dtype=np.float32 if args.dtype == "float32" else np.float64,
        scale=args.scale,
        fusion=args.fusion,
        precision=args.precision,
        max_iterations=args.max_iterations,
    )
    if args.presolve:
        result = solve_with_presolve(lp, **kwargs)
    else:
        result = solve(lp, **kwargs)

    print(result.summary())
    if result.is_optimal:
        print(f"objective: {result.objective:.10g}")
        print(f"modeled machine time: {result.timing.modeled_seconds * 1e3:.3f} ms")
        if result.timing.kernel_breakdown:
            top = sorted(result.timing.kernel_breakdown.items(),
                         key=lambda kv: -kv[1])[:5]
            print("time breakdown:",
                  ", ".join(f"{k} {v * 1e3:.2f}ms" for k, v in top))
        if "fused_launches" in result.extra:
            print(
                f"fusion: {result.extra['fused_ops']} ops -> "
                f"{result.extra['fused_launches']} launches "
                f"({result.extra['fusion_saved_seconds'] * 1e3:.3f} ms saved)"
            )
        if "refinement_steps" in result.extra:
            print(
                f"refinement: {result.extra['refinement_steps']} step(s), "
                f"residual {result.extra['residual_after_refinement']:.3g}"
            )
        if args.print_solution and result.x is not None:
            for j, value in enumerate(result.x):
                if abs(value) > 1e-9:
                    print(f"  {lp.variable_name(j)} = {value:.6g}")
        return 0
    return 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import solve_batch, solve_batch_chain
    from repro.lp.generators import random_dense_lp
    from repro.lp.mps import read_mps

    if args.random > 0:
        problems = [
            random_dense_lp(args.rows, args.cols, seed=args.seed + i)
            for i in range(args.random)
        ]
    elif args.paths:
        problems = [read_mps(p) for p in args.paths]
    else:
        raise SystemExit("batch needs MPS paths or --random N")

    kwargs = dict(
        method=args.method,
        dtype=np.float32 if args.dtype == "float32" else np.float64,
    )
    if args.chain:
        batch = solve_batch_chain(problems, **kwargs)
    else:
        batch = solve_batch(
            problems,
            schedule=args.schedule,
            n_streams=args.streams or None,
            **kwargs,
        )
    print(batch.render())
    return 0 if batch.all_optimal else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.batch import GPU_METHODS
    from repro.gpu.device import Device
    from repro.lp.generators import random_dense_lp
    from repro.lp.mps import read_mps
    from repro.solve import solve
    from repro.trace import merged_chrome_trace

    if args.random:
        lp = random_dense_lp(args.rows, args.cols, seed=args.seed)
    elif args.path:
        lp = read_mps(args.path)
    else:
        raise SystemExit("trace needs an MPS path or --random")

    kwargs = dict(
        method=args.method,
        pricing=args.pricing,
        dtype=np.float32 if args.dtype == "float32" else np.float64,
        max_iterations=args.max_iterations,
        trace=True,
    )
    dev = None
    if args.method in GPU_METHODS:
        # own the device so its kernel/transfer timeline survives the solve
        # and can be merged under the solver tracks
        dev = Device()
        dev.record_timeline()
        kwargs["device"] = dev
    result = solve(lp, **kwargs)

    print(result.summary())
    print(result.trace.summary())
    if args.out:
        merged_chrome_trace(result.trace, device=dev, target=args.out)
        print(f"chrome trace -> {args.out}")
    return 0 if result.is_optimal else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import metrics
    from repro.metrics.exporters import from_json, to_json, to_prometheus
    from repro.metrics.gate import (
        compare,
        load_baseline,
        make_baseline,
        write_baseline,
    )
    from repro.metrics.workloads import (
        SMOKE_TOLERANCES,
        SMOKE_WORKLOAD,
        smoke_workload,
    )

    if args.from_json:
        with open(args.from_json, "r", encoding="utf-8") as fh:
            snap = from_json(fh.read())
        workload = f"from-json:{args.from_json}"
    else:
        with metrics.collecting() as reg:
            if args.random > 0:
                from repro.lp.generators import random_dense_lp
                from repro.solve import solve_batch

                problems = [
                    random_dense_lp(args.rows, args.cols, seed=args.seed + i)
                    for i in range(args.random)
                ]
                solve_batch(
                    problems,
                    method=args.method,
                    schedule=args.schedule,
                    dtype=np.float32 if args.dtype == "float32" else np.float64,
                )
                workload = (
                    f"random:{args.random}x{args.rows}x{args.cols}"
                    f":{args.method}:{args.schedule}:{args.dtype}"
                    f":seed{args.seed}"
                )
            elif args.paths:
                from repro.lp.mps import read_mps
                from repro.solve import solve

                for path in args.paths:
                    solve(
                        read_mps(path),
                        method=args.method,
                        dtype=(
                            np.float32 if args.dtype == "float32"
                            else np.float64
                        ),
                    )
                workload = f"mps:{':'.join(args.paths)}:{args.method}"
            else:
                smoke_workload()
                workload = SMOKE_WORKLOAD
            snap = reg.snapshot()

    if args.format == "json":
        text = to_json(snap)
    else:
        text = to_prometheus(snap)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"metrics ({args.format}) -> {args.out}")
    else:
        print(text, end="")

    status = 0
    if args.write_baseline:
        tolerances = SMOKE_TOLERANCES if workload == SMOKE_WORKLOAD else None
        baseline = make_baseline(snap, workload=workload, tolerances=tolerances)
        write_baseline(baseline, args.write_baseline)
        print(f"baseline -> {args.write_baseline}")
    if args.gate:
        result = compare(snap, load_baseline(args.gate))
        print(result.render())
        if not result.ok:
            status = 1
    return status


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.lp.analysis import analyze
    from repro.lp.mps import read_mps

    print(analyze(read_mps(args.path)).render())
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.lp.generators import (
        klee_minty_lp,
        random_dense_lp,
        random_sparse_lp,
        transportation_lp,
    )
    from repro.lp.mps import write_mps

    if args.kind == "dense":
        if args.n is None:
            raise SystemExit("dense needs m and n")
        lp = random_dense_lp(args.m, args.n, seed=args.seed)
    elif args.kind == "sparse":
        if args.n is None:
            raise SystemExit("sparse needs m and n")
        lp = random_sparse_lp(args.m, args.n, density=args.density, seed=args.seed)
    elif args.kind == "transport":
        if args.n is None:
            raise SystemExit("transport needs supply and demand counts")
        lp = transportation_lp(args.m, args.n, seed=args.seed)
    else:
        lp = klee_minty_lp(args.m)
    write_mps(lp, args.out)
    print(f"wrote {lp.name}: {lp.num_constraints}x{lp.num_vars} -> {args.out}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.experiments import main as bench_main

    return bench_main([args.experiment])


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.metrics import disable, enable, to_prometheus
    from repro.serve import ServeConfig, serve_trace, synthetic_trace
    from repro.serve.job import JobState, priority_name

    trace = synthetic_trace(
        n_jobs=args.jobs, seed=args.seed, mean_interarrival=args.mean_gap
    )
    config = ServeConfig(
        n_devices=args.devices,
        n_streams=args.streams,
        method=args.method,
        max_queue_depth=args.queue_depth,
        cache_capacity=args.cache,
    )
    registry = enable() if args.metrics else None
    try:
        report = serve_trace(trace, config)
    finally:
        if registry is not None:
            disable()
    if args.jobs_table:
        from repro.bench.tables import Table

        t = Table(["job", "prio", "state", "device",
                   "latency ms", "warm", "status"])
        for job in report.jobs:
            t.add_row(
                job.job_id,
                priority_name(job.priority),
                job.state.value,
                job.device or "-",
                (job.latency_seconds or 0.0) * 1e3
                if job.state is JobState.COMPLETED else 0.0,
                "yes" if job.warm_started else "-",
                job.result.status.value if job.result is not None
                else (job.reject_reason or "-"),
            )
        print(t.render())
        print()
    print(report.render())
    if registry is not None:
        print()
        print(to_prometheus(registry.snapshot()), end="")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs import observing, render_tree, serve_chrome_trace, to_json
    from repro.serve import ServeConfig, serve_trace, synthetic_trace

    trace = synthetic_trace(
        n_jobs=args.jobs, seed=args.seed, mean_interarrival=args.mean_gap
    )
    config = ServeConfig(
        n_devices=args.devices,
        n_streams=args.streams,
        method=args.method,
        max_queue_depth=args.queue_depth,
        cache_capacity=args.cache,
    )
    with observing():
        report = serve_trace(trace, config)
    print(report.render())
    print()
    attribution = report.attribution()
    print(attribution.render(per_job=args.per_job))
    recording = report.obs_recording
    if args.tree:
        trace_id = args.tree
        if trace_id == "slowest":
            jobs = [
                (recording.latencies.get(t) or 0.0, t)
                for t in recording.trace_ids()
                if t.startswith("job-")
            ]
            if not jobs:
                print("no kept job traces to show")
                return 0
            trace_id = max(jobs)[1]
        print()
        print(render_tree(recording, trace_id))
    if args.json_out:
        to_json(recording, target=args.json_out)
        print(f"\nwrote span JSON to {args.json_out}")
    if args.chrome_out:
        serve_chrome_trace(recording, target=args.chrome_out)
        print(f"wrote Chrome trace to {args.chrome_out}")
    return 0


def _cmd_devices(_args: argparse.Namespace) -> int:
    from repro.bench.experiments import t1_device_table

    print(t1_device_table().render())
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "batch": _cmd_batch,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "info": _cmd_info,
    "generate": _cmd_generate,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "explain": _cmd_explain,
    "devices": _cmd_devices,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

# Developer entry points.  The tier-1 gate is `make test` (identical to the
# ROADMAP's verify line); `make test-batch` is the fast smoke slice covering
# the repro.batch subsystem, for quick iteration on batching changes;
# `make trace-smoke` exercises the tracing pipeline end to end (generate an
# instance, solve it traced, validate the merged Chrome-trace JSON).
# `make metrics-smoke` runs the canonical metrics workload and validates the
# Prometheus exposition; `make gate` re-runs it and compares the snapshot
# against the committed baseline, failing on any metric regression.
# `make sparse-smoke` exercises the sparse solver path end to end (generate
# a sparse instance, solve it with the dense and both sparse revised
# backends, assert the objectives agree).
# `make serve-smoke` replays a small arrival trace through the serving layer
# (fleet beats sequential, warm-start cache hits land).
# `make pdlp-smoke` runs the first-order (PDLP) backends on a sparse
# instance and asserts they agree with the revised simplex, and that
# method="auto" dispatches to a registered method.
# `make obs-smoke` replays a trace with the repro.obs span recorder on,
# validates span-tree containment, checks the attribution buckets sum to
# each job's latency, and validates the exported Chrome span trace.
# `make fuse-smoke` solves the same LP with launch-plan fusion off and on,
# asserts the fp64 results are bit-identical while the fused run issues
# strictly fewer kernel launches, and checks mixed precision recovers the
# fp64 objective.
# `make lint` enforces the layering architecture (no direct
# trace/metrics/obs imports inside solver backends; serve modules reach
# metrics and spans only through the instrument façade); `make verify` is
# the single pre-commit entry point: tier-1 tests + lint + the sparse,
# serve and obs smokes + the metrics regression gate.

PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

METRICS_BASELINE := benchmarks/baselines/metrics-smoke.json

.PHONY: test test-batch trace-smoke sparse-smoke serve-smoke pdlp-smoke \
	obs-smoke fuse-smoke metrics-smoke gate gate-baseline bench bench-batch \
	lint verify

test:  ## tier-1: the full test suite
	$(PYTHONPATH_SRC) python -m pytest -x -q

lint:  ## architecture lint: backend/serve import layering rules
	python tools/lint_backend_imports.py

verify: test lint sparse-smoke serve-smoke pdlp-smoke obs-smoke fuse-smoke gate  ## pre-commit: tests + lint + smokes + gate

test-batch:  ## fast smoke: batch subsystem tests only
	$(PYTHONPATH_SRC) python -m pytest -x -q -k "batch"

trace-smoke:  ## end-to-end: repro trace -> merged Chrome JSON -> validate
	$(PYTHONPATH_SRC) python -m repro generate dense 24 32 --out /tmp/trace-smoke.mps
	$(PYTHONPATH_SRC) python -m repro trace /tmp/trace-smoke.mps \
		--method gpu-revised --out /tmp/trace-smoke.json
	$(PYTHONPATH_SRC) python -c "from repro.trace import validate_chrome_trace; \
		doc = validate_chrome_trace(open('/tmp/trace-smoke.json').read()); \
		cats = {e.get('cat') for e in doc['traceEvents']}; \
		assert 'solver-phase' in cats and 'kernel' in cats, cats; \
		print('trace-smoke ok:', len(doc['traceEvents']), 'events')"

sparse-smoke:  ## end-to-end: sparse instance -> dense + sparse solvers agree
	$(PYTHONPATH_SRC) python -m repro generate sparse 80 120 --density 0.05 \
		--seed 11 --out /tmp/sparse-smoke.mps
	$(PYTHONPATH_SRC) python -c "\
	from repro.lp.mps import read_mps; \
	from repro import solve; \
	lp = read_mps('/tmp/sparse-smoke.mps'); \
	objs = {m: solve(lp, method=m).objective \
	        for m in ('revised', 'revised-sparse', 'gpu-revised-sparse')}; \
	ref = objs['revised']; \
	assert all(abs(o - ref) <= 1e-6 * max(1.0, abs(ref)) for o in objs.values()), objs; \
	print('sparse-smoke ok:', objs)"

serve-smoke:  ## end-to-end: arrival trace -> fleet serving -> invariants
	$(PYTHONPATH_SRC) python -c "\
	from repro.serve import ServeConfig, serve_trace, synthetic_trace; \
	trace = synthetic_trace(n_jobs=16, seed=7); \
	seq = serve_trace(trace, ServeConfig(n_devices=1, n_streams=1, cache_capacity=1)); \
	fleet = serve_trace(trace, ServeConfig(n_devices=2)); \
	assert fleet.all_optimal and seq.all_optimal; \
	assert fleet.span_seconds < seq.span_seconds, (fleet.span_seconds, seq.span_seconds); \
	assert fleet.cache_hits >= 1, fleet.cache.summary(); \
	print('serve-smoke ok:', fleet.summary())"

pdlp-smoke:  ## end-to-end: first-order backends agree with simplex + auto dispatch
	$(PYTHONPATH_SRC) python -m repro generate sparse 80 120 --density 0.05 \
		--seed 11 --out /tmp/pdlp-smoke.mps
	$(PYTHONPATH_SRC) python -c "\
	from repro.lp.mps import read_mps; \
	from repro import solve; \
	from repro.solve import choose_method; \
	from repro.lp.generators import random_sparse_lp; \
	lp = read_mps('/tmp/pdlp-smoke.mps'); \
	ref = solve(lp, method='revised').objective; \
	objs = {m: solve(lp, method=m).objective for m in ('pdlp', 'gpu-pdlp')}; \
	assert all(abs(o - ref) <= 1e-4 * max(1.0, abs(ref)) for o in objs.values()), (ref, objs); \
	big = random_sparse_lp(400, 600, density=0.02, seed=1); \
	assert choose_method(big) == 'gpu-pdlp', choose_method(big); \
	auto = solve(lp, method='auto'); \
	assert auto.status.value == 'optimal'; \
	print('pdlp-smoke ok:', {'revised': ref, **objs}, 'auto->', choose_method(lp))"

obs-smoke:  ## end-to-end: spans on -> attribution exact -> Chrome validates
	$(PYTHONPATH_SRC) python -c "\
	from repro.obs import observing, serve_chrome_trace, to_json, from_json; \
	from repro.serve import ServeConfig, serve_trace, synthetic_trace; \
	from repro.trace.chrome import validate_chrome_trace; \
	trace = synthetic_trace(n_jobs=8, seed=7); \
	ctx = observing(); rec_ = ctx.__enter__(); \
	report = serve_trace(trace, ServeConfig(n_devices=2)); \
	ctx.__exit__(None, None, None); \
	recording = report.obs_recording; \
	recording.validate(); \
	attr = report.attribution(); \
	assert attr.jobs, 'no attributed jobs'; \
	bad = [j for j in attr.jobs if abs(sum(j.buckets.values()) - j.latency_seconds) > 1e-9]; \
	assert not bad, bad; \
	assert from_json(to_json(recording)).kept_traces == recording.kept_traces; \
	validate_chrome_trace(serve_chrome_trace(recording)); \
	print('obs-smoke ok:', recording.kept_traces, 'traces,', len(recording.spans), 'spans,', len(attr.jobs), 'jobs attributed')"
	$(PYTHONPATH_SRC) python -m repro explain --jobs 6 --seed 3 \
		--tree slowest --chrome-out /tmp/obs-smoke.chrome.json > /tmp/obs-smoke.txt
	@grep -q "fleet-wide latency attribution" /tmp/obs-smoke.txt
	@echo "obs-smoke explain ok"

fuse-smoke:  ## end-to-end: fused == unfused bit-identical, fewer launches
	$(PYTHONPATH_SRC) python tools/fuse_smoke.py

metrics-smoke:  ## end-to-end: smoke workload -> Prometheus text -> validate
	$(PYTHONPATH_SRC) python -m repro metrics --format prometheus \
		--out /tmp/metrics-smoke.prom
	$(PYTHONPATH_SRC) python -c "from repro.metrics import validate_prometheus_text; \
		n = validate_prometheus_text(open('/tmp/metrics-smoke.prom').read()); \
		print('metrics-smoke ok:', n, 'samples')"

gate:  ## bench regression gate: smoke snapshot vs committed baseline
	$(PYTHONPATH_SRC) python -m repro metrics --format json \
		--out /tmp/metrics-gate.json --gate $(METRICS_BASELINE)

gate-baseline:  ## re-record the committed gate baseline (review the diff!)
	$(PYTHONPATH_SRC) python -m repro metrics --format json \
		--out /tmp/metrics-gate.json --write-baseline $(METRICS_BASELINE)

bench:  ## regenerate every evaluation experiment's tables
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only -q

bench-batch:  ## the B1 batched-LP throughput experiment only
	$(PYTHONPATH_SRC) python -m pytest benchmarks/bench_b1_batch_throughput.py --benchmark-only -q

# Developer entry points.  The tier-1 gate is `make test` (identical to the
# ROADMAP's verify line); `make test-batch` is the fast smoke slice covering
# the repro.batch subsystem, for quick iteration on batching changes.

PYTHONPATH_SRC := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-batch bench bench-batch

test:  ## tier-1: the full test suite
	$(PYTHONPATH_SRC) python -m pytest -x -q

test-batch:  ## fast smoke: batch subsystem tests only
	$(PYTHONPATH_SRC) python -m pytest -x -q -k "batch"

bench:  ## regenerate every evaluation experiment's tables
	$(PYTHONPATH_SRC) python -m pytest benchmarks/ --benchmark-only -q

bench-batch:  ## the B1 batched-LP throughput experiment only
	$(PYTHONPATH_SRC) python -m pytest benchmarks/bench_b1_batch_throughput.py --benchmark-only -q
